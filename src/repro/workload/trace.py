"""Streaming workload traces: canonical specs + seeded generators.

The paper evaluates poisoning as a static snapshot (poison, rebuild,
measure), but its threat model is inherently *online*: queries,
inserts, deletions, and drip-fed poison arrive interleaved against a
live index.  A :class:`TraceSpec` names one such time-evolving
scenario with canonical JSON scalars — like :class:`repro.runtime.Cell`
it is content-addressable, so a trace can be regenerated bit-for-bit
from its spec in any worker process of any resumed run.

A generated :class:`Trace` is four aligned numpy arrays (base keys,
op kinds, op keys, op aux values).  All randomness flows from
``stable_seed_words`` over the spec — never the salted builtin
``hash`` — which is what makes replay deterministic across processes
(pinned by ``tests/workload/test_trace_properties.py``).

Operation kinds
---------------
``query``   point lookup of a (possibly since-deleted) key
``insert``  organic insert of a fresh in-domain key
``delete``  removal of a stored key
``modify``  delete ``key`` + insert ``aux`` (one budget unit, the
            stealthiest adversary of ablation A11 — here an organic op)
``range``   range scan ``[key, aux]``
``poison``  adversarial insert of a crafted key (Algorithm 1 output)

Poison schedules
----------------
``oneshot`` the whole budget lands as one contiguous block at 25% of
            the trace — the static attack replayed online;
``drip``    evenly interleaved single insertions — the low-and-slow
            attacker a rate limiter would have to catch;
``burst``   ``burst_count`` contiguous bursts spread across the trace.

Tenant layouts
--------------
A spec may describe a *multi-tenant* scenario (``n_tenants`` > 1):
several users share one serving cluster, and every operation belongs
to exactly one tenant — a pure, deterministic function of its key, so
the trace arrays themselves never change shape:

``shared``  every tenant stores keys over the whole domain; a key's
            tenant is a multiplicative hash of its value (the
            colocated-table layout);
``ranges``  the domain splits into ``n_tenants`` equal-width
            contiguous key ranges with equal key mass each (the
            range-partitioned layout a shard map can align with);
``skewed``  equal-width ranges, but tenant ``t`` holds a
            ``tenant_skew ** t`` share of the key mass — tenant 0 is
            the heavy (premium) tenant whose shards run hot.

Per-tenant SLO targets derive from two scalars: tenant ``t``'s p95
probe budget is ``slo_p95 * slo_tier_factor ** t`` (``slo_p95 == 0``
disables SLOs).  All tenant fields are omitted from the canonical
serialisation while they sit at their single-tenant defaults, so
every pre-existing spec keeps its digest — and its bit-identical
generated stream.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, replace
from typing import Any, Sequence

import numpy as np

from ..core.greedy import greedy_poison
from ..data.keyset import Domain, KeySet
from ..data.synthetic import uniform_keyset
from ..runtime import stable_seed_words

__all__ = [
    "OP_QUERY", "OP_INSERT", "OP_DELETE", "OP_MODIFY", "OP_RANGE",
    "OP_POISON", "OP_NAMES", "QUERY_MIXES", "POISON_SCHEDULES",
    "TENANT_LAYOUTS", "TraceSpec", "Trace", "generate_trace",
    "generate_rate_driven_trace",
]

OP_QUERY, OP_INSERT, OP_DELETE, OP_MODIFY, OP_RANGE, OP_POISON = range(6)

OP_NAMES = {
    OP_QUERY: "query",
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_MODIFY: "modify",
    OP_RANGE: "range",
    OP_POISON: "poison",
}

QUERY_MIXES = ("uniform", "zipfian", "hotspot")
POISON_SCHEDULES = ("none", "oneshot", "drip", "burst")
TENANT_LAYOUTS = ("shared", "ranges", "skewed")

_DIGEST_HEX = 16  # matches Cell's 64-bit content-hash prefix

#: The single-tenant defaults.  While *all* of these fields sit at
#: their defaults they are omitted from the canonical serialisation,
#: so every spec written before multi-tenancy existed keeps its digest
#: (and therefore regenerates its exact pre-existing stream).
_TENANT_DEFAULTS = {
    "n_tenants": 1,
    "tenant_layout": "shared",
    "tenant_skew": 0.5,
    "slo_p95": 0.0,
    "slo_tier_factor": 1.0,
}

#: Fibonacci-hash multiplier for the ``shared`` layout's key->tenant
#: map (pure uint64 arithmetic: stable across processes and platforms,
#: unlike the salted builtin ``hash``).
_TENANT_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class TraceSpec:
    """Canonical description of one streaming scenario.

    Every field is a JSON scalar; :attr:`digest` hashes the canonical
    serialisation, so two specs describe the same workload iff their
    digests match — the property the checkpointed workload sweep and
    the cross-process determinism tests both rely on.
    """

    n_base_keys: int = 1_000
    domain_factor: int = 10          # |domain| = factor * n_base_keys
    n_ops: int = 2_000
    query_mix: str = "uniform"
    zipf_s: float = 1.2              # zipfian popularity exponent
    hotspot_fraction: float = 0.1    # hot range width / domain size
    hotspot_weight: float = 0.9      # share of queries hitting it
    range_fraction: float = 0.0
    range_span_fraction: float = 0.01  # scan width / domain size
    insert_fraction: float = 0.0
    delete_fraction: float = 0.0
    modify_fraction: float = 0.0
    poison_schedule: str = "none"
    poison_percentage: float = 0.0   # budget as % of the base keys
    burst_count: int = 4
    seed: int = 101
    n_tenants: int = 1
    tenant_layout: str = "shared"
    tenant_skew: float = 0.5         # mass ratio between adjacent tiers
    slo_p95: float = 0.0             # tenant 0's p95 target (0 = off)
    slo_tier_factor: float = 1.0     # per-tier SLO relaxation

    def __post_init__(self) -> None:
        # Every rejection names the offending field and its value, so a
        # bad CLI config fails with a message that points at the knob.
        if self.n_base_keys < 1:
            raise ValueError(
                f"n_base_keys must be >= 1 (need base keys), "
                f"got {self.n_base_keys}")
        if self.domain_factor < 2:
            raise ValueError(
                f"domain_factor must be >= 2 to leave gaps for "
                f"insertions, got {self.domain_factor}")
        if self.n_ops < 1:
            raise ValueError(
                f"n_ops must be >= 1 (need operations), "
                f"got {self.n_ops}")
        if self.query_mix not in QUERY_MIXES:
            raise ValueError(
                f"query_mix must name a query mix in {QUERY_MIXES}, "
                f"got {self.query_mix!r}")
        if self.poison_schedule not in POISON_SCHEDULES:
            raise ValueError(
                f"poison_schedule must be one of {POISON_SCHEDULES}, "
                f"got {self.poison_schedule!r}")
        if (self.poison_schedule == "none") != (self.poison_percentage == 0.0):
            raise ValueError(
                f"poison_percentage must be 0 exactly when "
                f"poison_schedule is 'none', got "
                f"poison_percentage={self.poison_percentage} with "
                f"poison_schedule={self.poison_schedule!r}")
        if not 0.0 <= self.poison_percentage <= 20.0:
            raise ValueError(
                f"poison_percentage is capped at 20%, "
                f"got {self.poison_percentage}")
        for name in ("range_fraction", "insert_fraction",
                     "delete_fraction", "modify_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 0.5:
                raise ValueError(
                    f"{name} must be in [0, 0.5], got {value}")
        if self.burst_count < 1:
            raise ValueError(
                f"burst_count must be >= 1, got {self.burst_count}")
        if self.n_tenants < 1:
            raise ValueError(
                f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.tenant_layout not in TENANT_LAYOUTS:
            raise ValueError(
                f"tenant_layout must be one of {TENANT_LAYOUTS}, "
                f"got {self.tenant_layout!r}")
        if not 0.0 < self.tenant_skew <= 1.0:
            raise ValueError(
                f"tenant_skew must be in (0, 1], got {self.tenant_skew}")
        if self.slo_p95 < 0.0:
            raise ValueError(
                f"slo_p95 must be non-negative (0 disables SLOs), "
                f"got {self.slo_p95}")
        if self.slo_tier_factor <= 0.0:
            raise ValueError(
                f"slo_tier_factor must be positive, "
                f"got {self.slo_tier_factor}")
        if self.n_tenants > 1:
            if self.n_base_keys < 4 * self.n_tenants:
                raise ValueError(
                    f"n_base_keys={self.n_base_keys} leaves under 4 "
                    f"keys per tenant for n_tenants={self.n_tenants}")
            if self.tenant_layout in ("ranges", "skewed"):
                # Every tenant's range must hold its keys with gaps
                # to spare — a skewed heavy tenant packs its slice
                # far denser than the global density suggests.
                counts = self.tenant_key_counts()
                for tenant, (lo, hi) in enumerate(
                        self.tenant_ranges()):
                    width = hi - lo + 1
                    if width < 2 * int(counts[tenant]):
                        raise ValueError(
                            f"tenant_skew={self.tenant_skew} packs "
                            f"tenant {tenant}'s {int(counts[tenant])} "
                            f"keys into a range of {width} values; "
                            f"raise domain_factor="
                            f"{self.domain_factor} to leave "
                            f"insertion gaps")
        counts = self.op_counts()
        if counts["query"] < 1:
            raise ValueError(
                "op fractions plus the poison budget leave no queries "
                f"in n_ops={self.n_ops}")
        if counts["delete"] + counts["modify"] > self.n_base_keys // 2:
            raise ValueError(
                "delete_fraction + modify_fraction stream would consume "
                f"over half of n_base_keys={self.n_base_keys}: "
                f"{counts['delete']} + {counts['modify']} victims")

    # ------------------------------------------------------------------
    def poison_budget(self) -> int:
        """Crafted keys the adversary may inject."""
        if self.poison_schedule == "none":
            return 0
        return max(1, int(self.n_base_keys * self.poison_percentage
                          / 100.0))

    def op_counts(self) -> dict[str, int]:
        """How many operations of each kind the trace will hold."""
        counts = {
            "insert": int(self.n_ops * self.insert_fraction),
            "delete": int(self.n_ops * self.delete_fraction),
            "modify": int(self.n_ops * self.modify_fraction),
            "range": int(self.n_ops * self.range_fraction),
            "poison": self.poison_budget(),
        }
        counts["query"] = self.n_ops - sum(counts.values())
        return counts

    def domain(self) -> Domain:
        """The key universe of the scenario."""
        return Domain.of_size(self.domain_factor * self.n_base_keys)

    # ------------------------------------------------------------------
    # Multi-tenancy
    # ------------------------------------------------------------------
    def tenant_weights(self) -> np.ndarray:
        """Key-mass share per tenant (sums to 1).

        ``shared``/``ranges`` split mass evenly; ``skewed`` gives
        tenant ``t`` a share proportional to ``tenant_skew ** t``, so
        tenant 0 is the heavy tenant.
        """
        if self.tenant_layout == "skewed":
            weights = self.tenant_skew ** np.arange(
                self.n_tenants, dtype=np.float64)
        else:
            weights = np.ones(self.n_tenants, dtype=np.float64)
        return weights / weights.sum()

    def tenant_key_counts(self) -> np.ndarray:
        """Base keys each tenant owns (largest-remainder, >= 1 each)."""
        shares = self.tenant_weights() * self.n_base_keys
        counts = np.maximum(np.floor(shares).astype(np.int64), 1)
        remainders = shares - np.floor(shares)
        # Stable largest-remainder top-up: ties break on tenant index.
        order = np.lexsort((np.arange(self.n_tenants), -remainders))
        i = 0
        while counts.sum() < self.n_base_keys:
            counts[order[i % self.n_tenants]] += 1
            i += 1
        while counts.sum() > self.n_base_keys:
            donor = int(np.argmax(counts))
            counts[donor] -= 1
        return counts

    def tenant_bounds(self) -> np.ndarray:
        """Interior key-space boundaries of the ranged layouts.

        Tenant ``t`` owns ``[bounds[t-1], bounds[t])`` with the domain
        edges implied; ``shared`` layouts have no boundaries.
        """
        if self.tenant_layout == "shared" or self.n_tenants == 1:
            return np.empty(0, dtype=np.int64)
        domain = self.domain()
        steps = np.arange(1, self.n_tenants, dtype=np.int64)
        return domain.lo + (steps * domain.size) // self.n_tenants

    def tenant_ranges(self) -> list[tuple[int, int]]:
        """Inclusive ``(lo, hi)`` key range per tenant (ranged layouts).

        For ``shared`` every tenant spans the whole domain.
        """
        domain = self.domain()
        if self.tenant_layout == "shared" or self.n_tenants == 1:
            return [(domain.lo, domain.hi)] * self.n_tenants
        edges = np.concatenate([
            [domain.lo], self.tenant_bounds(), [domain.hi + 1]])
        return [(int(edges[t]), int(edges[t + 1]) - 1)
                for t in range(self.n_tenants)]

    def tenant_of(self, keys: np.ndarray) -> np.ndarray:
        """The tenant owning each key — a pure function of the value.

        Ranged layouts map by range membership; ``shared`` maps by a
        process-stable multiplicative hash.  Because tenancy never
        depends on trace position, re-chunked replays attribute every
        op identically.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self.n_tenants == 1:
            return np.zeros(keys.shape, dtype=np.int64)
        if self.tenant_layout == "shared":
            mixed = keys.astype(np.uint64) * _TENANT_HASH_MULTIPLIER
            return ((mixed >> np.uint64(33))
                    % np.uint64(self.n_tenants)).astype(np.int64)
        return np.searchsorted(self.tenant_bounds(), keys,
                               side="right").astype(np.int64)

    def tenant_slos(self) -> tuple[float, ...]:
        """Per-tenant p95 probe targets (``inf`` when SLOs are off)."""
        if self.slo_p95 == 0.0:
            return (float("inf"),) * self.n_tenants
        return tuple(self.slo_p95 * self.slo_tier_factor ** t
                     for t in range(self.n_tenants))

    # ------------------------------------------------------------------
    def spec(self) -> dict[str, Any]:
        """JSON-safe canonical description (what the digest covers).

        Tenant fields are omitted while the whole group sits at the
        single-tenant defaults — the backward-compatibility contract
        that keeps every pre-multi-tenancy digest (and stream) intact.
        """
        fields = asdict(self)
        if all(fields[name] == default
               for name, default in _TENANT_DEFAULTS.items()):
            for name in _TENANT_DEFAULTS:
                del fields[name]
        return dict(sorted(fields.items()))

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace games."""
        return json.dumps(self.spec(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Hex content hash naming this scenario."""
        raw = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return raw.hexdigest()[:_DIGEST_HEX]


@dataclass(frozen=True, eq=False)  # array fields: identity equality
class Trace:
    """A generated operation stream, ready to replay.

    ``kinds``/``keys``/``aux`` align element-for-element; ``aux``
    carries the range-scan upper bound or the modify replacement key
    and is zero elsewhere.
    """

    spec: TraceSpec
    base_keys: np.ndarray
    kinds: np.ndarray
    keys: np.ndarray
    aux: np.ndarray

    @property
    def n_ops(self) -> int:
        return int(self.kinds.size)

    def counts(self) -> dict[str, int]:
        """Observed operation counts by kind name."""
        return {OP_NAMES[kind]: int((self.kinds == kind).sum())
                for kind in OP_NAMES}

    def poison_keys(self) -> np.ndarray:
        """The adversarial keys, in injection order."""
        return self.keys[self.kinds == OP_POISON]

    def tenants(self) -> np.ndarray:
        """Tenant id per operation (op-aligned, from the op's key)."""
        return self.spec.tenant_of(self.keys)

    def checksum(self) -> int:
        """CRC-32 over every array — the cross-process fingerprint."""
        crc = 0
        for arr in (self.base_keys, self.kinds, self.keys, self.aux):
            crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
        return crc


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _fresh_keys(rng: np.random.Generator, domain: Domain,
                taken: np.ndarray, count: int) -> np.ndarray:
    """``count`` unique in-domain keys avoiding ``taken`` (rejection)."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    chosen = np.empty(0, dtype=np.int64)
    for _ in range(64):
        draw = rng.integers(domain.lo, domain.hi + 1,
                            size=max(4 * count, 256))
        draw = np.setdiff1d(draw, taken)
        draw = np.setdiff1d(draw, chosen)
        # setdiff1d sorts; permute before taking, or the subset would
        # collapse to the smallest keys of every oversample.
        take = rng.permutation(draw)[:count - chosen.size]
        chosen = np.concatenate([chosen, take])
        if chosen.size >= count:
            # Shuffle once more so stream order is also unbiased.
            return rng.permutation(chosen)
    raise RuntimeError(
        f"could not draw {count} fresh keys from a domain of "
        f"{domain.size} with {taken.size} taken")


def _query_stream(rng: np.random.Generator, spec: TraceSpec,
                  base: KeySet, count: int) -> np.ndarray:
    """``count`` point-query keys drawn per the spec's mix."""
    keys = base.keys
    if spec.query_mix == "uniform":
        return keys[rng.integers(0, keys.size, size=count)]
    if spec.query_mix == "zipfian":
        # Popularity rank is a deterministic permutation of the keys,
        # so skew is uncorrelated with key order (the hotspot mix
        # covers the correlated case).
        ranks = np.arange(1, keys.size + 1, dtype=np.float64)
        weights = ranks ** -spec.zipf_s
        weights /= weights.sum()
        popularity = rng.permutation(keys)
        return popularity[rng.choice(keys.size, size=count, p=weights)]
    # hotspot: a contiguous slice of the key range takes most queries.
    width = max(1, int(spec.hotspot_fraction * base.m))
    lo = int(rng.integers(base.domain.lo, base.domain.hi - width + 2))
    hot = keys[(keys >= lo) & (keys < lo + width)]
    if hot.size == 0:
        hot = keys  # degenerate hot range; fall back to uniform
    hot_mask = rng.random(count) < spec.hotspot_weight
    out = keys[rng.integers(0, keys.size, size=count)]
    out[hot_mask] = hot[rng.integers(0, hot.size,
                                     size=int(hot_mask.sum()))]
    return out


def _poison_positions(spec: TraceSpec, count: int) -> np.ndarray:
    """Trace positions (sorted, unique) for the poison schedule."""
    n = spec.n_ops
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if spec.poison_schedule == "oneshot":
        start = min(n - count, n // 4)
        return np.arange(start, start + count, dtype=np.int64)
    if spec.poison_schedule == "drip":
        return np.floor(np.arange(count) * (n / count)).astype(np.int64)
    # burst: contiguous runs centred at evenly spaced points.
    bursts = min(spec.burst_count, count)
    sizes = np.diff(np.linspace(0, count, bursts + 1).astype(int))
    positions = []
    cursor = 0
    for i, size in enumerate(sizes):
        centre = int((i + 0.5) / bursts * n)
        start = max(cursor, min(centre - size // 2, n - (count - cursor)))
        positions.append(np.arange(start, start + size, dtype=np.int64))
        cursor = start + size
    return np.concatenate(positions)


def _base_keyset(rng: np.random.Generator, spec: TraceSpec,
                 domain: Domain) -> KeySet:
    """The initial stored keys, honouring the tenant layout.

    Ranged layouts draw each tenant's keys uniformly inside its own
    contiguous range (counts per :meth:`TraceSpec.tenant_key_counts`),
    so a ``skewed`` layout produces a piecewise CDF whose slope is the
    tenant mass — the distribution a balanced-by-mass shard map
    partitions unevenly on purpose.  ``shared`` (and single-tenant)
    layouts keep the historical uniform draw bit-for-bit.
    """
    if spec.n_tenants == 1 or spec.tenant_layout == "shared":
        return uniform_keyset(spec.n_base_keys, domain, rng)
    pieces = []
    for (lo, hi), count in zip(spec.tenant_ranges(),
                               spec.tenant_key_counts()):
        sub = uniform_keyset(int(count), Domain(lo, hi), rng)
        pieces.append(sub.keys)
    return KeySet(np.concatenate(pieces), domain)


def generate_trace(spec: TraceSpec) -> Trace:
    """Materialise the operation stream a spec describes.

    Deterministic in the spec alone: the generator stream seeds from
    ``stable_seed_words(seed, digest)``, so every process — worker,
    resumed run, another machine — regenerates identical arrays.
    """
    rng = np.random.default_rng(
        stable_seed_words(spec.seed, spec.digest))
    domain = spec.domain()
    base = _base_keyset(rng, spec, domain)
    counts = spec.op_counts()

    # Adversarial stream: Algorithm 1 against the base keyset.  The
    # schedule only decides *when* the crafted keys land.
    poison = np.empty(0, dtype=np.int64)
    if counts["poison"]:
        poison = np.asarray(
            greedy_poison(base, counts["poison"]).poison_keys,
            dtype=np.int64)
        counts = dict(counts)
        counts["poison"] = int(poison.size)  # attack may exhaust early
        counts["query"] = spec.n_ops - sum(
            v for k, v in counts.items() if k != "query")

    # Organic mutation streams, all disjoint by construction.
    victims = rng.choice(base.keys, size=counts["delete"]
                         + counts["modify"], replace=False)
    delete_victims = victims[:counts["delete"]]
    modify_victims = victims[counts["delete"]:]
    taken = np.union1d(base.keys, poison)
    organic = _fresh_keys(rng, domain, taken,
                          counts["insert"] + counts["modify"])
    insert_keys = organic[:counts["insert"]]
    modify_new = organic[counts["insert"]:]

    queries = _query_stream(rng, spec, base, counts["query"])
    range_span = max(1, int(spec.range_span_fraction * domain.size))
    range_lo = base.keys[rng.integers(0, base.keys.size,
                                      size=counts["range"])]
    range_hi = np.minimum(range_lo + range_span, domain.hi)

    # Interleave: poison occupies its scheduled slots; everything else
    # fills the remaining slots in one global shuffle.
    kinds = np.full(spec.n_ops, OP_QUERY, dtype=np.int8)
    keys = np.zeros(spec.n_ops, dtype=np.int64)
    aux = np.zeros(spec.n_ops, dtype=np.int64)

    poison_at = _poison_positions(spec, int(poison.size))
    kinds[poison_at] = OP_POISON
    keys[poison_at] = poison

    other_kinds = np.concatenate([
        np.full(counts["query"], OP_QUERY, dtype=np.int8),
        np.full(counts["insert"], OP_INSERT, dtype=np.int8),
        np.full(counts["delete"], OP_DELETE, dtype=np.int8),
        np.full(counts["modify"], OP_MODIFY, dtype=np.int8),
        np.full(counts["range"], OP_RANGE, dtype=np.int8),
    ])
    other_keys = np.concatenate([queries, insert_keys, delete_victims,
                                 modify_victims, range_lo])
    other_aux = np.concatenate([
        np.zeros(counts["query"] + counts["insert"] + counts["delete"],
                 dtype=np.int64),
        modify_new, range_hi])
    order = rng.permutation(other_kinds.size)

    slots = np.setdiff1d(np.arange(spec.n_ops, dtype=np.int64),
                         poison_at)
    kinds[slots] = other_kinds[order]
    keys[slots] = other_keys[order]
    aux[slots] = other_aux[order]

    for arr in (kinds, keys, aux):
        arr.setflags(write=False)
    return Trace(spec=spec, base_keys=base.keys, kinds=kinds, keys=keys,
                 aux=aux)


def generate_rate_driven_trace(spec: TraceSpec,
                               tick_sizes: Sequence[int]) -> Trace:
    """Materialise a spec whose op count an arrival process dictates.

    ``tick_sizes`` — typically
    :meth:`repro.workload.closedloop.ArrivalModel.tick_sizes` output —
    replaces the spec's nominal ``n_ops`` with its sum; every other
    field (mix, fractions, schedule, seed) carries over unchanged.
    The returned trace is the canonical stream of the *resized* spec:
    two runs with the same spec + arrival counts regenerate
    bit-identical arrays.  Note the digest names only that resized
    spec, not the arrival shape — two arrival processes with equal
    totals yield the same stream, and it is the per-tick boundaries
    that differ, so feed the same ``tick_sizes`` to the simulator
    (and keep the arrival parameters in any cell identity, as the
    ``closedloop`` grid does).
    """
    sizes = np.asarray(tick_sizes, dtype=np.int64)
    if sizes.size == 0 or (sizes < 0).any():
        raise ValueError(
            "tick_sizes must be a non-empty sequence of non-negative "
            f"counts: {tick_sizes!r}")
    total = int(sizes.sum())
    if total < 1:
        raise ValueError("arrival process produced an empty stream")
    return generate_trace(replace(spec, n_ops=total))
