"""Serving backends: one batched, updatable surface over every index.

The serving simulator replays a trace against "a live index"; this
module gives every index structure in :mod:`repro.index` the same
online surface — batched point lookups, inserts, deletes, range scans
— so a scenario×backend grid compares like with like:

``binary``   plain binary search over a dense sorted array (the
             model-free floor: always correct, ``O(log n)`` probes,
             no retrains, immune to poisoning by construction);
``btree``    the bulk-loaded :class:`~repro.index.btree.BTree` with
             native inserts, tombstoned deletes, compaction rebuilds;
``linear``   the single-line learned index, rebuilt (retrained) when
             buffered updates exceed a threshold;
``rmi``      the two-stage RMI, same rebuild discipline;
``dynamic``  :class:`~repro.index.dynamic.DynamicLearnedIndex` — the
             delta-buffer design whose retrain-on-threshold *is* the
             update-channel attack surface.

Update semantics (uniform across backends): inserts buffer into a
sorted delta side table served by binary search; deletes tombstone
model-resident keys (membership flips immediately, the model is
untouched); once pending updates exceed ``rebuild_threshold`` of the
model's keys, the backend compacts and retrains on the live set.
``insert_batch``/``delete_batch`` are *batch-atomic*: the whole batch
lands, then the rebuild check runs once — a bulk load.  Callers that
need op-exact retrain timing have ``replay_ops``: it applies a whole
op slice (reads and mutations interleaved) with vectorized
classification and batched window searches while firing every rebuild
at the same op index the one-key-at-a-time feed would — the columnar
fast path the serving simulator runs on, pinned bit-identical to the
scalar feed by the parity suite.
Probe counts always reflect the *actual* searches performed —
model + delta + quarantine — so a swollen side table or a poisoned
retrain shows up in the latency percentiles honestly.

TRIM defense: the learned backends accept ``trim_keep_fraction``; at
every rebuild the TRIM sanitizer screens the training set and rejected
keys are quarantined on a slow (binary-searched) side list, keeping
lookups correct while the models train only on trusted keys.

Tuner hooks: ``set_trim_keep_fraction`` and ``set_rebuild_threshold``
reconfigure a *live* backend between operations — the knobs a defense
auto-tuner (:class:`repro.workload.closedloop.TrimAutoTuner`) turns
from observed churn and amplification.  Changes take effect at the
next rebuild check; they never trigger one by themselves, so a tuning
decision at a tick boundary cannot move retrain timing inside a tick.

Shard hook: ``live_keys`` exports the backend's current live key set
(model − tombstones + delta + quarantine) as one sorted array — what a
cluster router migrates when a shard splits or merges
(:mod:`repro.cluster`).  It is a read-only snapshot; exporting never
perturbs rebuild timing.
"""

from __future__ import annotations

import hashlib
import struct
import time

import numpy as np

from ..defense.trim import trim_cdf
from ..index.batch import side_table_search, windowed_search_batch
from ..index.btree import BTree
from ..index.dynamic import DynamicLearnedIndex
from ..index.linear_index import LinearLearnedIndex
from ..index.rmi import RecursiveModelIndex
from .columnar import (
    EFF_DROP_DELTA,
    EFF_DROP_QUAR,
    EFF_FRESH,
    EFF_NOOP,
    EFF_REVIVE,
    EFF_TOMB,
    TickOps,
    decompose_ops,
    first_occurrence,
    sorted_insert,
    sorted_insert_unique,
    sorted_member,
    sorted_remove,
    sorted_remove_present,
)

__all__ = ["BACKENDS", "ServingBackend", "make_backend",
           "BinarySearchBackend", "BTreeBackend", "LinearBackend",
           "RMIBackend", "DynamicBackend"]


def _trim_sanitizer(keep_fraction: float):
    """A TRIM screen for retrain-time training sets."""
    def sanitize(merged: np.ndarray) -> np.ndarray:
        n_keep = max(1, int(round(keep_fraction * merged.size)))
        if n_keep >= merged.size:
            return merged
        return trim_cdf(merged, n_keep=n_keep).kept_keys
    return sanitize


class ServingBackend:
    """Common machinery: a model over a snapshot plus side tables.

    Subclasses implement ``_build`` (train the model on a sorted key
    array) and ``_model_lookup`` (batched found/probes over the
    current model).  This base class owns the delta buffer, tombstone
    set, quarantine list, and the rebuild/compaction cycle — identical
    bookkeeping for every backend, so grid cells differ only in the
    structure under test.
    """

    name = "abstract"
    #: Whether a TRIM sanitizer makes sense (models train on keys).
    supports_trim = True

    def __init__(self, keys: np.ndarray, rebuild_threshold: float = 0.1,
                 trim_keep_fraction: float | None = None,
                 quarantine_rejects: bool = True, **build_args):
        self._validate_threshold(rebuild_threshold)
        self._validate_keep_fraction(trim_keep_fraction)
        self._threshold = rebuild_threshold
        self._keep_fraction = trim_keep_fraction
        self._sanitizer = (None if trim_keep_fraction is None
                           else _trim_sanitizer(trim_keep_fraction))
        # The ablation seam: with the quarantine side list disabled,
        # TRIM rejects are dropped from the live set instead of being
        # retained on the binary-searched side list.  Default True —
        # every pre-existing scenario keeps the durable screen.
        self._quarantine_rejects = bool(quarantine_rejects)
        self._build_args = build_args
        self._snapshot = np.sort(np.asarray(keys, dtype=np.int64))
        self._delta = np.empty(0, dtype=np.int64)
        self._tombs = np.empty(0, dtype=np.int64)
        self._quarantine = np.empty(0, dtype=np.int64)
        self._retrains = 0
        self._metrics = None
        self._build(self._snapshot)

    # -- validation ----------------------------------------------------
    @staticmethod
    def _validate_threshold(threshold: float) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"rebuild threshold must be in (0, 1]: {threshold}")

    def _validate_keep_fraction(self, fraction: float | None) -> None:
        if fraction is None:
            return
        if not self.supports_trim:
            raise ValueError(
                f"backend {self.name!r} has no trainable model; "
                "TRIM does not apply")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"trim keep fraction must be in (0, 1]: {fraction}")

    # -- instrumentation ----------------------------------------------
    def set_metrics(self, metrics) -> None:
        """Attach a :class:`repro.observe.MetricsRegistry`.

        Opt-in: with no registry attached (the default), every stage
        hook below is a single ``is None`` check.  The registry only
        ever receives wall-clock observations and commutative
        counters, so attaching one cannot change any recorded series
        or digest.
        """
        self._metrics = metrics

    # -- subclass surface ---------------------------------------------
    def _build(self, keys: np.ndarray) -> None:
        raise NotImplementedError

    def _model_lookup(self, keys: np.ndarray,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """(found, probes) of the trained structure alone."""
        raise NotImplementedError

    def _model_error_bound(self) -> float:
        """Drift proxy: how wide the structure's worst search is."""
        raise NotImplementedError

    # -- uniform serving surface --------------------------------------
    @property
    def n_keys(self) -> int:
        """Live keys (snapshot − tombstones + delta + quarantine)."""
        return int(self._snapshot.size - self._tombs.size
                   + self._delta.size + self._quarantine.size)

    @property
    def retrain_count(self) -> int:
        """Rebuild/retrain cycles so far."""
        return self._retrains

    @property
    def pending_updates(self) -> int:
        """Buffered inserts + tombstones awaiting compaction."""
        return int(self._delta.size + self._tombs.size)

    @property
    def quarantine_size(self) -> int:
        """Keys the TRIM sanitizer rejected from the model."""
        return int(self._quarantine.size)

    # -- tuner hooks ---------------------------------------------------
    @property
    def rebuild_threshold(self) -> float:
        """Pending-update fraction that triggers a compaction."""
        return self._threshold

    def set_rebuild_threshold(self, threshold: float) -> None:
        """Retarget the rebuild trigger on a live backend.

        Takes effect at the next mutation's rebuild check — lowering
        the threshold below the current pending level does not retrain
        on the spot, so a tuner acting at a tick boundary can never
        move retrain timing inside a tick.
        """
        self._validate_threshold(threshold)
        self._threshold = threshold

    @property
    def trim_keep_fraction(self) -> float | None:
        """The TRIM screen's keep fraction (``None`` = defense off)."""
        return self._keep_fraction

    @property
    def quarantine_rejects(self) -> bool:
        """Whether TRIM rejects are quarantined (vs dropped)."""
        return self._quarantine_rejects

    def set_trim_keep_fraction(self, fraction: float | None) -> None:
        """Re-arm (or disarm, with ``None``) the TRIM screen.

        Applies to the *next* rebuild's training set; the current
        model and quarantine are untouched until then.
        """
        self._validate_keep_fraction(fraction)
        self._keep_fraction = fraction
        self._sanitizer = (None if fraction is None
                           else _trim_sanitizer(fraction))

    def error_bound(self) -> float:
        """Worst-case search width of the current model, in cells."""
        return float(self._model_error_bound())

    # -- shard hook ----------------------------------------------------
    def live_keys(self) -> np.ndarray:
        """The current live key set, sorted (the migration unit).

        Exactly the keys a rebuild would train on before any TRIM
        screen: snapshot minus tombstones, plus the delta buffer and
        the quarantine list.  A cluster router splitting or merging
        shards rebuilds the replacement backends from this export.
        """
        return np.union1d(
            np.setdiff1d(self._snapshot, self._tombs),
            np.union1d(self._delta, self._quarantine))

    def _digest_parts(self) -> "tuple[np.ndarray, ...]":
        """The state arrays :meth:`state_digest` hashes, in order."""
        return (self._snapshot, self._delta, self._tombs,
                self._quarantine)

    def state_digest(self) -> str:
        """Content hash of the backend's full serving state.

        Covers the model snapshot and every side table plus the
        retrain counter, so two backends replaying the same op
        sequence digest equal iff they ended bit-identical — the
        cross-process parity suite compares these across the pipe
        instead of shipping whole arrays.
        """
        h = hashlib.sha256()
        h.update(type(self).__name__.encode())
        h.update(struct.pack("<qq", self.retrain_count, self.n_keys))
        for part in self._digest_parts():
            h.update(np.ascontiguousarray(
                part, dtype="<i8").tobytes())
            h.update(b"|")
        return h.hexdigest()[:16]

    def lookup_batch(self, keys: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(found, probes) per query over model + side tables."""
        keys = np.asarray(keys, dtype=np.int64)
        found, probes = self._model_lookup(keys)
        found = np.asarray(found, dtype=bool).copy()
        probes = np.asarray(probes, dtype=np.int64).copy()
        if self._tombs.size:
            # Tombstoned keys still sit in the model; membership says
            # no.  The searchsorted check stands in for the O(1)
            # bitmap a real system would consult, costing one probe.
            idx = np.searchsorted(self._tombs, keys)
            idx = np.minimum(idx, self._tombs.size - 1)
            dead = found & (self._tombs[idx] == keys)
            probes[found] += 1
            found[dead] = False
        side_table_search(self._delta, keys, found, probes)
        side_table_search(self._quarantine, keys, found, probes)
        return found, probes

    def range_scan(self, lo: int, hi: int) -> int:
        """Probe cost of locating ``[lo, hi]`` (scan itself is linear).

        Charged as one endpoint lookup against the model plus a
        binary search per side table — the last-mile cost poisoning
        inflates; the sequential scan that follows is the same for
        every backend and carries no signal.
        """
        _, probes = self.lookup_batch(np.asarray([lo], dtype=np.int64))
        return int(probes[0])

    def insert_batch(self, keys: np.ndarray) -> None:
        """Buffer fresh keys into the delta side table.

        Upsert semantics: a key that is already live — still in the
        model, waiting in the delta buffer, or quarantined — is a
        no-op, so it can neither inflate ``n_keys`` nor count twice
        against the rebuild threshold.  (A closed-loop adversary whose
        crafted key collides with a live one simply wastes that budget
        unit.)
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        # A re-inserted tombstoned key simply comes back to life.
        revived = np.intersect1d(keys, self._tombs)
        if revived.size:
            self._tombs = np.setdiff1d(self._tombs, revived)
            keys = np.setdiff1d(keys, revived)
        keys = keys[~(np.isin(keys, self._snapshot)
                      | np.isin(keys, self._delta)
                      | np.isin(keys, self._quarantine))]
        self._delta = np.union1d(self._delta, keys)
        self._maybe_rebuild()

    def delete_batch(self, keys: np.ndarray) -> None:
        """Remove keys: drop from side tables, tombstone the model."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        self._delta = np.setdiff1d(self._delta, keys)
        self._quarantine = np.setdiff1d(self._quarantine, keys)
        in_model = keys[np.isin(keys, self._snapshot)]
        self._tombs = np.union1d(self._tombs, in_model)
        self._maybe_rebuild()

    # -- compaction ----------------------------------------------------
    def _maybe_rebuild(self) -> None:
        if (self.pending_updates
                >= self._threshold * max(self._snapshot.size, 1)):
            self.rebuild()

    def rebuild(self) -> None:
        """Compact and retrain on the live keys (the poisoning window:
        whatever reached the delta buffer trains the next model)."""
        live = self.live_keys()
        if self._sanitizer is not None:
            kept = np.sort(np.asarray(self._sanitizer(live),
                                      dtype=np.int64))
            self._quarantine = (np.setdiff1d(live, kept)
                                if self._quarantine_rejects
                                else np.empty(0, dtype=np.int64))
            live = kept
        else:
            self._quarantine = np.empty(0, dtype=np.int64)
        self._snapshot = live
        self._delta = np.empty(0, dtype=np.int64)
        self._tombs = np.empty(0, dtype=np.int64)
        self._build(live)
        self._retrains += 1

    # -- columnar replay ----------------------------------------------
    #: Whether the vectorized segment replay is valid for this
    #: backend (the B-Tree's native inserts are order-dependent
    #: structure edits, so it walks sub-ops instead).
    _columnar_replay = True

    def replay_ops(self, kinds: np.ndarray, keys: np.ndarray,
                   aux: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply one op slice with op-exact rebuild timing.

        The slice is the serving simulator's unit of work: queries,
        range reads (charged as their ``lo`` endpoint, as in
        :meth:`range_scan`), and mutations interleaved in op order.
        Returns ``(found, probes)`` for the slice's reads, in op
        order — bit-identical to feeding every op through the
        single-op surface, including where rebuilds fire.

        A slice whose insert and delete key sets overlap cannot be
        classified against the slice-start state (the key changes
        camps mid-slice), so it falls back to the scalar sub-op walk;
        generated traces never produce one, the guard is for direct
        API users and property tests.
        """
        metrics = self._metrics
        started = time.perf_counter() if metrics is not None else 0.0
        ops = decompose_ops(kinds, keys, aux)
        if metrics is not None:
            metrics.observe("columnar.decompose",
                            time.perf_counter() - started)
            metrics.inc("columnar.ops", int(kinds.size))
        found = np.zeros(ops.read_pos.size, dtype=bool)
        probes = np.zeros(ops.read_pos.size, dtype=np.int64)
        if not self._columnar_replay or ops.hazard:
            self._replay_scalar(ops, found, probes)
        else:
            self._replay_columnar(ops, found, probes)
        return found, probes

    def _replay_scalar(self, ops: TickOps, found_out: np.ndarray,
                       probes_out: np.ndarray) -> None:
        """Sub-op walk: one mutation at a time, reads batched per gap
        (valid because ``lookup_batch`` is per-element independent)."""
        r = 0
        for i in range(ops.sub_key.size):
            r2 = int(np.searchsorted(ops.read_pos, ops.sub_pos[i]))
            if r2 > r:
                f, p = self.lookup_batch(ops.read_keys[r:r2])
                found_out[r:r2] = f
                probes_out[r:r2] = p
                r = r2
            key = ops.sub_key[i:i + 1]
            if ops.sub_ins[i]:
                self.insert_batch(key)
            else:
                self.delete_batch(key)
        if ops.read_pos.size > r:
            f, p = self.lookup_batch(ops.read_keys[r:])
            found_out[r:] = f
            probes_out[r:] = p

    #: Pending-update delta per effect code, indexed by EFF_*.
    _DPEND = np.array([0, -1, 1, -1, 0, 1], dtype=np.int64)

    def _replay_columnar(self, ops: TickOps, found_out: np.ndarray,
                         probes_out: np.ndarray) -> None:
        """Segment loop: classify all remaining sub-ops against the
        current state, find the first rebuild-threshold crossing via
        the pending-update cumsum, serve and apply everything up to it
        in bulk, rebuild exactly there, re-classify, repeat."""
        metrics = self._metrics
        j = 0
        r = 0
        while True:
            sub_key = ops.sub_key[j:]
            sub_ins = ops.sub_ins[j:]
            sub_pos = ops.sub_pos[j:]
            started = (time.perf_counter() if metrics is not None
                       else 0.0)
            eff = self._classify_mutations(sub_ins, sub_key)
            if metrics is not None:
                metrics.observe("columnar.classify",
                                time.perf_counter() - started)
            pend = self.pending_updates + np.cumsum(self._DPEND[eff])
            bound = self._threshold * max(self._snapshot.size, 1)
            crossing = pend >= bound
            fire = bool(crossing.any())
            if fire:
                seg = int(np.argmax(crossing)) + 1
                r_end = int(np.searchsorted(ops.read_pos,
                                            sub_pos[seg - 1]))
            else:
                seg = int(sub_key.size)
                r_end = int(ops.read_pos.size)
            self._serve_segment(ops, r, r_end, eff[:seg],
                                sub_key[:seg], sub_pos[:seg],
                                found_out, probes_out)
            j += seg
            r = r_end
            if not fire:
                break
            self.rebuild()

    def _serve_segment(self, ops: TickOps, r: int, r_end: int,
                       eff: np.ndarray, sub_key: np.ndarray,
                       sub_pos: np.ndarray, found_out: np.ndarray,
                       probes_out: np.ndarray) -> None:
        """One rebuild-free segment: model-batch all its reads at
        once (the model is fixed between rebuilds), then walk the
        reads in chunks that share a mutation prefix, bulk-applying
        side-table effects between chunks."""
        if r_end <= r:
            self._apply_effects(eff, sub_key)
            return
        metrics = self._metrics
        keys = ops.read_keys[r:r_end]
        started = time.perf_counter() if metrics is not None else 0.0
        found, probes = self._model_lookup(keys)
        if metrics is not None:
            metrics.observe("columnar.model_lookup",
                            time.perf_counter() - started)
        found = np.asarray(found, dtype=bool).copy()
        probes = np.asarray(probes, dtype=np.int64).copy()
        kprefix = np.searchsorted(sub_pos, ops.read_pos[r:r_end])
        cuts = np.nonzero(np.diff(kprefix))[0] + 1
        starts = np.concatenate([np.zeros(1, dtype=np.int64), cuts])
        ends = np.concatenate([cuts, np.asarray([kprefix.size],
                                                dtype=np.int64)])
        done = 0
        adjust_seconds = 0.0
        for cs, ce in zip(starts, ends):
            upto = int(kprefix[cs])
            if upto > done:
                self._apply_effects(eff[done:upto],
                                    sub_key[done:upto])
                done = upto
            started = (time.perf_counter() if metrics is not None
                       else 0.0)
            self._adjust_reads(keys[cs:ce], found[cs:ce],
                               probes[cs:ce])
            if metrics is not None:
                adjust_seconds += time.perf_counter() - started
        if eff.size > done:
            self._apply_effects(eff[done:], sub_key[done:])
        if metrics is not None:
            metrics.observe("columnar.adjust", adjust_seconds)
        found_out[r:r_end] = found
        probes_out[r:r_end] = probes

    def _classify_mutations(self, sub_ins: np.ndarray,
                            sub_key: np.ndarray) -> np.ndarray:
        """Effect of each sub-op under the single-key semantics,
        resolved against the current state.  Only a key's first
        occurrence can change state (upsert inserts and re-deletes
        are no-ops); hazard slices never reach here, so the
        classification cannot be invalidated mid-segment."""
        first = first_occurrence(sub_key)
        in_t = sorted_member(self._tombs, sub_key)
        in_s = sorted_member(self._snapshot, sub_key)
        in_d = sorted_member(self._delta, sub_key)
        in_q = sorted_member(self._quarantine, sub_key)
        eff = np.full(sub_key.size, EFF_NOOP, dtype=np.int8)
        ins = sub_ins & first
        eff[ins & in_t] = EFF_REVIVE
        eff[ins & ~(in_t | in_s | in_d | in_q)] = EFF_FRESH
        dels = ~sub_ins & first
        eff[dels & in_d] = EFF_DROP_DELTA
        eff[dels & ~in_d & in_q] = EFF_DROP_QUAR
        eff[dels & ~in_d & ~in_q & in_s & ~in_t] = EFF_TOMB
        return eff

    def _apply_effects(self, eff: np.ndarray,
                       sub_key: np.ndarray) -> None:
        """Bulk-apply classified sub-ops to the side tables.

        Within a hazard-free bulk the per-effect key sets are
        disjoint from the tables they leave, so set-at-once equals
        one-at-a-time — and the arrays stay bit-equal to the scalar
        feed's."""
        revive = sub_key[eff == EFF_REVIVE]
        tomb = sub_key[eff == EFF_TOMB]
        if revive.size or tomb.size:
            self._tombs = sorted_insert_unique(
                sorted_remove_present(self._tombs, revive), tomb)
        fresh = sub_key[eff == EFF_FRESH]
        drop_d = sub_key[eff == EFF_DROP_DELTA]
        if fresh.size or drop_d.size:
            self._delta = sorted_insert_unique(
                sorted_remove_present(self._delta, drop_d), fresh)
        drop_q = sub_key[eff == EFF_DROP_QUAR]
        if drop_q.size:
            self._quarantine = sorted_remove_present(
                self._quarantine, drop_q)

    def _adjust_reads(self, keys: np.ndarray, found: np.ndarray,
                      probes: np.ndarray) -> None:
        """The post-model steps of :meth:`lookup_batch`, in place on
        one chunk's slices (same order: tombstones, delta,
        quarantine)."""
        if self._tombs.size:
            idx = np.minimum(np.searchsorted(self._tombs, keys),
                             self._tombs.size - 1)
            dead = found & (self._tombs[idx] == keys)
            probes[found] += 1
            found[dead] = False
        side_table_search(self._delta, keys, found, probes)
        side_table_search(self._quarantine, keys, found, probes)


class BinarySearchBackend(ServingBackend):
    """Sorted array + binary search: the model-free baseline.

    Inserts merge directly into the array (no model to stale-out), so
    there is never a rebuild and poisoning can only grow ``log2 n``.
    """

    name = "binary"
    supports_trim = False

    def _build(self, keys: np.ndarray) -> None:
        pass  # the snapshot array IS the structure

    def insert_batch(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        self._tombs = np.setdiff1d(self._tombs, keys)
        self._snapshot = np.union1d(self._snapshot, keys)

    def delete_batch(self, keys: np.ndarray) -> None:
        self._snapshot = np.setdiff1d(
            self._snapshot, np.asarray(keys, dtype=np.int64))

    def _replay_columnar(self, ops: TickOps, found_out: np.ndarray,
                         probes_out: np.ndarray) -> None:
        """No side tables and no rebuilds here — the snapshot array
        is the whole structure — so the replay is one chunk walk:
        bulk-merge the mutations between reads, serve each read chunk
        against the current array."""
        if self._tombs.size or self._delta.size \
                or self._quarantine.size:
            # Never populated by this backend's own surface; replay
            # scalar if a caller somehow seeded them.
            self._replay_scalar(ops, found_out, probes_out)
            return
        if ops.read_pos.size == 0:
            self._snapshot = sorted_insert(
                sorted_remove(self._snapshot,
                              ops.sub_key[~ops.sub_ins]),
                ops.sub_key[ops.sub_ins])
            return
        kprefix = np.searchsorted(ops.sub_pos, ops.read_pos)
        cuts = np.nonzero(np.diff(kprefix))[0] + 1
        starts = np.concatenate([np.zeros(1, dtype=np.int64), cuts])
        ends = np.concatenate([cuts, np.asarray([kprefix.size],
                                                dtype=np.int64)])
        done = 0

        def apply(lo: int, hi: int) -> None:
            keys = ops.sub_key[lo:hi]
            ins = ops.sub_ins[lo:hi]
            self._snapshot = sorted_insert(
                sorted_remove(self._snapshot, keys[~ins]), keys[ins])

        for cs, ce in zip(starts, ends):
            upto = int(kprefix[cs])
            if upto > done:
                apply(done, upto)
                done = upto
            f, p = self.lookup_batch(ops.read_keys[cs:ce])
            found_out[cs:ce] = f
            probes_out[cs:ce] = p
        if ops.sub_key.size > done:
            apply(done, int(ops.sub_key.size))

    def _model_lookup(self, keys: np.ndarray):
        n = self._snapshot.size
        lo = np.zeros(keys.size, dtype=np.int64)
        hi = np.full(keys.size, n - 1, dtype=np.int64)
        probe = windowed_search_batch(self._snapshot, keys, lo, hi)
        return probe.found, probe.probes

    def _model_error_bound(self) -> float:
        return float(np.ceil(np.log2(max(self._snapshot.size, 2))))


class BTreeBackend(ServingBackend):
    """The classic B-Tree with native inserts.

    Probes are node-local comparisons (the B-Tree's honest unit);
    deletes tombstone and eventually trigger a bulk-load compaction.
    """

    name = "btree"
    supports_trim = False
    #: Native tree inserts are order-dependent structure edits; the
    #: replay surface walks sub-ops (with gap-batched reads) instead
    #: of classifying them against a snapshot.
    _columnar_replay = False

    def __init__(self, keys: np.ndarray, rebuild_threshold: float = 0.1,
                 trim_keep_fraction: float | None = None,
                 quarantine_rejects: bool = True,
                 min_degree: int = 16):
        super().__init__(keys, rebuild_threshold, trim_keep_fraction,
                         quarantine_rejects=quarantine_rejects,
                         min_degree=min_degree)

    def _build(self, keys: np.ndarray) -> None:
        self._tree = BTree.bulk_load(keys, **self._build_args)

    def insert_batch(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        revived = np.intersect1d(keys, self._tombs)
        self._tombs = np.setdiff1d(self._tombs, revived)
        fresh = np.setdiff1d(keys, revived)
        for key in fresh[~np.isin(fresh, self._snapshot)]:
            self._tree.insert(int(key))
        # Track membership in the snapshot array as well so the shared
        # tombstone/compaction bookkeeping keeps working.
        self._snapshot = np.asarray(list(self._tree.items()),
                                    dtype=np.int64)

    def _model_lookup(self, keys: np.ndarray):
        found, comparisons, _ = self._tree.search_batch(keys)
        return found, comparisons

    def _model_error_bound(self) -> float:
        # Worst search = height * full-node binary search.
        t = self._build_args["min_degree"]
        return float(self._tree.height
                     * np.ceil(np.log2(max(2 * t - 1, 2))))


class LinearBackend(ServingBackend):
    """The single-line learned index (Section IV's victim), online."""

    name = "linear"

    def _build(self, keys: np.ndarray) -> None:
        self._index = LinearLearnedIndex(keys)

    def _model_lookup(self, keys: np.ndarray):
        probe = self._index.lookup_batch(keys)
        return probe.found, probe.probes

    def _model_error_bound(self) -> float:
        return float(self._index.max_error)


class RMIBackend(ServingBackend):
    """The two-stage RMI (Section V's victim), online.

    ``model_size`` fixes keys-per-model at build time; the model count
    adapts at every rebuild like a re-provisioned deployment.
    """

    name = "rmi"

    def __init__(self, keys: np.ndarray, rebuild_threshold: float = 0.1,
                 trim_keep_fraction: float | None = None,
                 quarantine_rejects: bool = True,
                 model_size: int = 100):
        super().__init__(keys, rebuild_threshold, trim_keep_fraction,
                         quarantine_rejects=quarantine_rejects,
                         model_size=model_size)

    def _build(self, keys: np.ndarray) -> None:
        n_models = max(int(keys.size) // self._build_args["model_size"],
                       1)
        self._index = RecursiveModelIndex.build_equal_size(keys,
                                                           n_models)

    def _model_lookup(self, keys: np.ndarray):
        probe = self._index.lookup_batch(keys)
        return probe.found, probe.probes

    def _model_error_bound(self) -> float:
        return float(self._index.max_search_window())


class DynamicBackend(ServingBackend):
    """:class:`DynamicLearnedIndex` behind the uniform surface.

    Inserts go through the index's own public API — its
    retrain-on-threshold cycle (the update-channel attack surface of
    ablation A9) replaces the generic delta bookkeeping, and its
    sanitizer hook carries the TRIM defense.
    """

    name = "dynamic"

    def __init__(self, keys: np.ndarray, rebuild_threshold: float = 0.1,
                 trim_keep_fraction: float | None = None,
                 quarantine_rejects: bool = True,
                 model_size: int = 100):
        super().__init__(keys, rebuild_threshold, trim_keep_fraction,
                         quarantine_rejects=quarantine_rejects,
                         model_size=model_size)

    def _build(self, keys: np.ndarray) -> None:
        n_models = max(int(keys.size) // self._build_args["model_size"],
                       1)
        self._index = DynamicLearnedIndex(
            keys, n_models=n_models,
            retrain_threshold=self._threshold,
            sanitizer=self._sanitizer,
            quarantine_rejects=self._quarantine_rejects)

    @property
    def n_keys(self) -> int:
        return int(self._index.n_keys) - int(self._tombs.size)

    @property
    def retrain_count(self) -> int:
        return self._retrains + self._index.retrain_count

    @property
    def quarantine_size(self) -> int:
        return self._index.quarantine_size

    def insert_batch(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        revived = np.intersect1d(keys, self._tombs)
        self._tombs = np.setdiff1d(self._tombs, revived)
        for key in np.setdiff1d(keys, revived):
            # The serving surface is upsert (matching the generic
            # backend); the index itself keeps its strict
            # duplicate-rejecting contract, so membership is checked
            # here before handing the key down.
            if not self._index.contains(int(key)):
                self._index.insert(int(key))

    def set_rebuild_threshold(self, threshold: float) -> None:
        super().set_rebuild_threshold(threshold)
        self._index.set_retrain_threshold(threshold)

    def set_trim_keep_fraction(self, fraction: float | None) -> None:
        super().set_trim_keep_fraction(fraction)
        self._index.set_sanitizer(self._sanitizer)

    def live_keys(self) -> np.ndarray:
        # The dynamic index owns its own side tables; the shared
        # snapshot/delta fields are not authoritative here.
        return np.setdiff1d(
            np.sort(np.concatenate([
                self._index.rmi.store.keys,
                self._index.delta_keys,
                self._index.quarantine_keys])),
            self._tombs)

    def _digest_parts(self) -> "tuple[np.ndarray, ...]":
        # Same ownership rule as live_keys: hash the index's own side
        # tables, not the unused generic delta/quarantine fields.
        return (self._index.rmi.store.keys, self._index.delta_keys,
                self._index.quarantine_keys, self._tombs)

    def rebuild(self) -> None:
        """Compact and retrain through the index's own screening path.

        The base-class rebuild would screen into the *generic*
        quarantine list, which this backend's lookups never consult
        (the index owns its side tables) — so the dynamic backend
        rebuilds by replacing its index over the live keys with
        ``sanitize_initial`` armed, landing rejects in the index's own
        quarantine where lookups price them honestly.
        """
        live = self.live_keys()
        self._tombs = np.empty(0, dtype=np.int64)
        self._retrains += self._index.retrain_count + 1
        n_models = max(int(live.size) // self._build_args["model_size"],
                       1)
        self._index = DynamicLearnedIndex(
            live, n_models=n_models,
            retrain_threshold=self._threshold,
            sanitizer=self._sanitizer,
            sanitize_initial=True,
            quarantine_rejects=self._quarantine_rejects)

    def delete_batch(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        present = keys[[self._index.contains(int(k)) for k in keys]]
        self._tombs = np.union1d(self._tombs, present)
        if (self._tombs.size
                >= self._threshold * max(self._index.n_keys, 1)):
            live = self.live_keys()
            self._tombs = np.empty(0, dtype=np.int64)
            # The replacement index restarts its internal counter;
            # fold the finished one's cycles in before dropping it.
            self._retrains += self._index.retrain_count + 1
            self._build(live)

    def _model_lookup(self, keys: np.ndarray):
        probe = self._index.lookup_batch(keys)
        return probe.found, probe.probes

    def _model_error_bound(self) -> float:
        return float(self._index.rmi.max_search_window())

    def lookup_batch(self, keys: np.ndarray):
        # The dynamic index owns its own side tables; only the
        # tombstone check applies on top.
        keys = np.asarray(keys, dtype=np.int64)
        found, probes = self._model_lookup(keys)
        found = found.copy()
        probes = probes.copy()
        if self._tombs.size:
            idx = np.searchsorted(self._tombs, keys)
            idx = np.minimum(idx, self._tombs.size - 1)
            dead = found & (self._tombs[idx] == keys)
            probes[found] += 1
            found[dead] = False
        return found, probes

    def _replay_columnar(self, ops: TickOps, found_out: np.ndarray,
                         probes_out: np.ndarray) -> None:
        """Segment loop against the index's own bookkeeping.

        Two distinct crossings bound a segment here: a fresh insert
        tripping the index's retrain (``delta >= θ·base``, checked
        inside :meth:`DynamicLearnedIndex.insert`) and a delete
        tripping this backend's tombstone fold (``tombs >= θ·max(
        n_keys, 1)``, checked on *every* delete).  Both levels are
        cumsums of the classified effects, with the fold's ``n_keys``
        varying as fresh inserts land, so the first crossing of
        either kind is found in one vector pass."""
        j = 0
        r = 0
        while True:
            index = self._index
            base = index.rmi.store.keys
            delta = index.delta_keys
            quar = index.quarantine_keys
            tombs = self._tombs
            sub_key = ops.sub_key[j:]
            sub_ins = ops.sub_ins[j:]
            sub_pos = ops.sub_pos[j:]
            metrics = self._metrics
            started = (time.perf_counter() if metrics is not None
                       else 0.0)
            first = first_occurrence(sub_key)
            in_t = sorted_member(tombs, sub_key)
            contains = (sorted_member(base, sub_key)
                        | sorted_member(delta, sub_key)
                        | sorted_member(quar, sub_key))
            eff = np.full(sub_key.size, EFF_NOOP, dtype=np.int8)
            ins = sub_ins & first
            eff[ins & in_t] = EFF_REVIVE
            eff[ins & ~in_t & ~contains] = EFF_FRESH
            dels = ~sub_ins & first
            eff[dels & contains & ~in_t] = EFF_TOMB
            cum_fresh = np.cumsum(eff == EFF_FRESH)
            # Net tombstone level: folds count tombstones added by
            # deletes minus those revived by re-inserts.
            cum_tomb = np.cumsum((eff == EFF_TOMB).astype(np.int64)
                                 - (eff == EFF_REVIVE))
            crossing = np.zeros(sub_key.size, dtype=bool)
            fresh = eff == EFF_FRESH
            crossing[fresh] = (delta.size + cum_fresh[fresh]
                               >= self._threshold * base.size)
            n_keys_i = base.size + delta.size + cum_fresh + quar.size
            crossing[~sub_ins] = (
                tombs.size + cum_tomb[~sub_ins]
                >= self._threshold * np.maximum(n_keys_i[~sub_ins], 1))
            if metrics is not None:
                metrics.observe("columnar.classify",
                                time.perf_counter() - started)
            fire = bool(crossing.any())
            if fire:
                seg = int(np.argmax(crossing)) + 1
                r_end = int(np.searchsorted(ops.read_pos,
                                            sub_pos[seg - 1]))
            else:
                seg = int(sub_key.size)
                r_end = int(ops.read_pos.size)
            self._serve_dynamic_segment(
                ops, r, r_end, eff[:seg], sub_key[:seg],
                sub_pos[:seg], delta, quar, found_out, probes_out)
            j += seg
            r = r_end
            if not fire:
                break
            if ops.sub_ins[j - 1]:
                # The firing sub-op is the fresh insert whose buffer
                # append crossed the index's retrain threshold: run
                # exactly that merge.
                index.flush()
            else:
                # The firing sub-op is a delete tripping the fold in
                # delete_batch; replicate its compaction verbatim.
                live = self.live_keys()
                self._tombs = np.empty(0, dtype=np.int64)
                self._retrains += index.retrain_count + 1
                self._build(live)

    def _serve_dynamic_segment(self, ops: TickOps, r: int, r_end: int,
                               eff: np.ndarray, sub_key: np.ndarray,
                               sub_pos: np.ndarray, delta: np.ndarray,
                               quar: np.ndarray, found_out: np.ndarray,
                               probes_out: np.ndarray) -> None:
        """One retrain/fold-free segment: batch the RMI probe over
        all its reads, walk read chunks with growing local delta and
        tombstone arrays, then commit them (the index absorbs the
        fresh keys, already screened for absence and threshold)."""
        seg_fresh = sub_key[eff == EFF_FRESH]
        metrics = self._metrics
        if r_end > r:
            keys = ops.read_keys[r:r_end]
            started = (time.perf_counter() if metrics is not None
                       else 0.0)
            probe = self._index.rmi.lookup_batch(keys)
            if metrics is not None:
                metrics.observe("columnar.model_lookup",
                                time.perf_counter() - started)
            found = probe.found.copy()
            probes = np.asarray(probe.probes, dtype=np.int64).copy()
            kprefix = np.searchsorted(sub_pos, ops.read_pos[r:r_end])
            cuts = np.nonzero(np.diff(kprefix))[0] + 1
            starts = np.concatenate([np.zeros(1, dtype=np.int64),
                                     cuts])
            ends = np.concatenate([cuts, np.asarray([kprefix.size],
                                                    dtype=np.int64)])
            tombs = self._tombs
            done = 0
            adjust_seconds = 0.0
            for cs, ce in zip(starts, ends):
                upto = int(kprefix[cs])
                if upto > done:
                    chunk_eff = eff[done:upto]
                    chunk_key = sub_key[done:upto]
                    delta = sorted_insert_unique(
                        delta, chunk_key[chunk_eff == EFF_FRESH])
                    tombs = sorted_insert_unique(
                        sorted_remove_present(
                            tombs,
                            chunk_key[chunk_eff == EFF_REVIVE]),
                        chunk_key[chunk_eff == EFF_TOMB])
                    done = upto
                ck = keys[cs:ce]
                f = found[cs:ce]
                p = probes[cs:ce]
                started = (time.perf_counter() if metrics is not None
                           else 0.0)
                # Same adjustment order as lookup_batch: the index's
                # side tables first, the tombstone check last.
                side_table_search(delta, ck, f, p)
                side_table_search(quar, ck, f, p)
                if tombs.size:
                    idx = np.minimum(np.searchsorted(tombs, ck),
                                     tombs.size - 1)
                    dead = f & (tombs[idx] == ck)
                    p[f] += 1
                    f[dead] = False
                if metrics is not None:
                    adjust_seconds += time.perf_counter() - started
            if metrics is not None:
                metrics.observe("columnar.adjust", adjust_seconds)
            found_out[r:r_end] = found
            probes_out[r:r_end] = probes
        self._index._absorb_fresh(seg_fresh)
        self._tombs = sorted_insert_unique(
            sorted_remove_present(self._tombs,
                                  sub_key[eff == EFF_REVIVE]),
            sub_key[eff == EFF_TOMB])


BACKENDS: dict[str, type[ServingBackend]] = {
    cls.name: cls
    for cls in (BinarySearchBackend, BTreeBackend, LinearBackend,
                RMIBackend, DynamicBackend)
}


def make_backend(name: str, keys: np.ndarray,
                 rebuild_threshold: float = 0.1,
                 trim_keep_fraction: float | None = None,
                 **build_args) -> ServingBackend:
    """Instantiate a registered backend over the initial keys."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return cls(keys, rebuild_threshold=rebuild_threshold,
               trim_keep_fraction=trim_keep_fraction, **build_args)
