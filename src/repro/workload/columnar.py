"""Columnar replay machinery: sequential-exact batch application.

The scalar serving loop feeds mutations to a backend one operation at
a time so the rebuild threshold fires at the exact op index (the
op-exact retrain contract every recorded series depends on).  The
columnar fast path keeps that contract while applying a whole tick at
once; this module holds its backend-agnostic machinery:

* :func:`decompose_ops` splits an op slice into *read slots* (queries
  and range endpoints, in op order) and *mutation sub-ops* (one per
  insert/poison/delete, two per modify — delete then insert), each
  tagged with its op index;
* :func:`sorted_member`, :func:`first_occurrence` — the vectorized
  membership/classification primitives the backends use to predict,
  per sub-op, exactly what the scalar single-key call would have done
  to their state (and therefore where the rebuild threshold crosses);
* :func:`sorted_insert`, :func:`sorted_remove` — ``union1d`` /
  ``setdiff1d`` on an already-sorted-unique array without the
  re-sort, so side tables stay bit-identical to the scalar arrays at
  a fraction of the cost.

Equivalence contract
--------------------
The per-sub-op classification is only valid while a key's fate does
not depend on *earlier sub-ops of the other kind* in the same slice:
:attr:`TickOps.hazard` detects a key that is both inserted and
deleted in one slice, and every backend falls back to the per-sub-op
scalar walk for such slices.  Everything else — first-occurrence
rules, threshold-crossing splits, chunked read adjustment — is pinned
bit-identical to the scalar path by
``tests/workload/test_columnar_parity.py`` and
``tests/cluster/test_cluster_columnar_parity.py``.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..contracts import (
    WIRE_HEADER as _WIRE_HEADER,
    WIRE_MAGIC,
    WIRE_VERSION,
    ContractViolation,
)
from .trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
)

__all__ = [
    "TickOps", "decompose_ops", "sorted_member", "first_occurrence",
    "sorted_insert", "sorted_remove",
    "sorted_insert_unique", "sorted_remove_present",
    "EFF_NOOP", "EFF_REVIVE", "EFF_FRESH", "EFF_DROP_DELTA",
    "EFF_DROP_QUAR", "EFF_TOMB",
    "WIRE_VERSION", "encode_event_batch", "decode_event_batch",
]

#: What the scalar single-key call would do to the generic side
#: tables: nothing, un-tombstone, buffer a fresh key, drop a buffered
#: key, drop a quarantined key, tombstone a model-resident key.
EFF_NOOP, EFF_REVIVE, EFF_FRESH, EFF_DROP_DELTA, EFF_DROP_QUAR, \
    EFF_TOMB = range(6)


class TickOps(NamedTuple):
    """One op slice, decomposed for columnar replay.

    Read slots align with the slice's query/range ops in op order (a
    range contributes its ``lo`` endpoint — the only part of a range
    the cost model charges).  Mutation sub-ops are single-key
    insert/delete steps in op order; a modify contributes its delete
    then its insert under the same op index, so a rebuild between the
    two halves lands exactly where the scalar path puts it.
    """

    read_pos: np.ndarray
    read_keys: np.ndarray
    read_is_query: np.ndarray
    sub_ins: np.ndarray
    sub_key: np.ndarray
    sub_pos: np.ndarray

    @property
    def hazard(self) -> bool:
        """A key both inserted and deleted in this slice.

        Classification against the slice-start state cannot see a key
        change camps mid-slice (a delete tombstoning a key flips a
        later insert from duplicate to revival, and vice versa), so
        such slices replay on the scalar walk instead.
        """
        ins = self.sub_key[self.sub_ins]
        dels = self.sub_key[~self.sub_ins]
        return bool(ins.size and dels.size
                    and np.intersect1d(ins, dels).size)


def decompose_ops(kinds: np.ndarray, keys: np.ndarray,
                  aux: np.ndarray) -> TickOps:
    """Split an op slice into read slots and mutation sub-ops."""
    kinds = np.asarray(kinds)
    keys = np.asarray(keys, dtype=np.int64)
    aux = np.asarray(aux, dtype=np.int64)
    is_read = (kinds == OP_QUERY) | (kinds == OP_RANGE)
    is_ins = (kinds == OP_INSERT) | (kinds == OP_POISON)
    is_del = kinds == OP_DELETE
    is_mod = kinds == OP_MODIFY
    known = is_read | is_ins | is_del | is_mod
    if not known.all():
        bad = kinds[~known][0]
        raise ValueError(f"unknown op kind: {bad}")

    read_pos = np.nonzero(is_read)[0]
    mut_pos = np.nonzero(is_ins | is_del | is_mod)[0]
    counts = np.where(is_mod[mut_pos], 2, 1)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64),
                              np.cumsum(counts)])
    total = int(offsets[-1])
    sub_ins = np.zeros(total, dtype=bool)
    sub_key = np.zeros(total, dtype=np.int64)
    sub_pos = np.repeat(mut_pos, counts)
    first = offsets[:-1]
    sub_ins[first] = is_ins[mut_pos]
    sub_key[first] = keys[mut_pos]
    mod_of_mut = is_mod[mut_pos]
    second = first[mod_of_mut] + 1
    sub_ins[second] = True
    sub_key[second] = aux[mut_pos[mod_of_mut]]
    return TickOps(read_pos=read_pos, read_keys=keys[read_pos],
                   read_is_query=kinds[read_pos] == OP_QUERY,
                   sub_ins=sub_ins, sub_key=sub_key, sub_pos=sub_pos)


# The REVB wire layout itself is declared once in
# :mod:`repro.contracts` (WIRE_MAGIC / WIRE_VERSION / WIRE_HEADER);
# this module owns the encode/decode implementation and re-exports
# the constants for its established importers.


def encode_event_batch(kinds: np.ndarray, keys: np.ndarray,
                       aux: np.ndarray) -> bytes:
    """Serialize one op slice into the versioned columnar wire form."""
    kinds = np.ascontiguousarray(kinds, dtype="<i1")
    keys = np.ascontiguousarray(keys, dtype="<i8")
    aux = np.ascontiguousarray(aux, dtype="<i8")
    if not (kinds.size == keys.size == aux.size):
        raise ValueError(
            "event batch columns must align: "
            f"{kinds.size}/{keys.size}/{aux.size}")
    return (_WIRE_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, kinds.size)
            + kinds.tobytes() + keys.tobytes() + aux.tobytes())


def decode_event_batch(payload: bytes,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deserialize :func:`encode_event_batch` output.

    Returns fresh (writable) ``(kinds, keys, aux)`` arrays; raises
    ``ValueError`` on a bad magic, a version mismatch, or a truncated
    payload.
    """
    if len(payload) < _WIRE_HEADER.size:
        raise ContractViolation(
            f"event batch truncated: {len(payload)} bytes")
    magic, version, count = _WIRE_HEADER.unpack_from(payload)
    if magic != WIRE_MAGIC:
        raise ContractViolation(
            f"bad event batch magic: {magic!r}")
    if version != WIRE_VERSION:
        raise ContractViolation(
            f"event batch wire version {version} != "
            f"supported {WIRE_VERSION}")
    expected = _WIRE_HEADER.size + count * (1 + 8 + 8)
    if len(payload) != expected:
        raise ContractViolation(
            f"event batch length {len(payload)} != expected "
            f"{expected} for {count} events")
    off = _WIRE_HEADER.size
    kinds = np.frombuffer(payload, dtype="<i1", count=count,
                          offset=off).astype(np.int8)
    off += count
    keys = np.frombuffer(payload, dtype="<i8", count=count,
                         offset=off).astype(np.int64)
    off += 8 * count
    aux = np.frombuffer(payload, dtype="<i8", count=count,
                        offset=off).astype(np.int64)
    return kinds, keys, aux


def sorted_member(sorted_arr: np.ndarray,
                  keys: np.ndarray) -> np.ndarray:
    """Membership mask of ``keys`` in a sorted unique array."""
    if sorted_arr.size == 0:
        return np.zeros(keys.shape, dtype=bool)
    idx = np.searchsorted(sorted_arr, keys)
    idx[idx == sorted_arr.size] = sorted_arr.size - 1
    return sorted_arr[idx] == keys


def first_occurrence(keys: np.ndarray) -> np.ndarray:
    """True at the first occurrence of each distinct value."""
    mask = np.zeros(keys.size, dtype=bool)
    mask[np.unique(keys, return_index=True)[1]] = True
    return mask


def sorted_insert(arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``union1d(arr, values)`` without re-sorting a sorted ``arr``.

    One position scan plus one memmove instead of a full sort —
    identical output array, which is what keeps columnar side tables
    bit-equal to the scalar ones.
    """
    if values.size == 0:
        return arr
    fresh = np.unique(values)
    fresh = fresh[~sorted_member(arr, fresh)]
    if fresh.size == 0:
        return arr
    return np.insert(arr, np.searchsorted(arr, fresh), fresh)


def sorted_remove(arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``setdiff1d(arr, values)`` without re-sorting a sorted ``arr``."""
    if values.size == 0 or arr.size == 0:
        return arr
    hits = np.unique(values)
    hits = hits[sorted_member(arr, hits)]
    if hits.size == 0:
        return arr
    return np.delete(arr, np.searchsorted(arr, hits))


def sorted_insert_unique(arr: np.ndarray,
                         values: np.ndarray) -> np.ndarray:
    """:func:`sorted_insert` for values already unique and absent.

    First-occurrence classification guarantees exactly that for the
    per-effect key groups (an ``EFF_FRESH`` key is by construction
    distinct and not in the delta, a tombstone candidate not in the
    tombs, ...), so the dedup-and-membership prefilter of the generic
    version is pure overhead there.  Callers own the precondition;
    violating it silently produces a non-unique table.
    """
    if values.size == 0:
        return arr
    v = np.sort(values)
    return np.insert(arr, np.searchsorted(arr, v), v)


def sorted_remove_present(arr: np.ndarray,
                          values: np.ndarray) -> np.ndarray:
    """:func:`sorted_remove` for values already unique and present.

    Same trust contract as :func:`sorted_insert_unique`, dual
    direction: ``np.delete`` treats the index list as a set, so no
    sort is needed at all.
    """
    if values.size == 0:
        return arr
    return np.delete(arr, np.searchsorted(arr, values))
