"""Streaming workloads: trace generation + an online serving simulator.

The paper's attacks are evaluated as static snapshots; this package
makes the threat model *online*.  Three layers:

* :mod:`repro.workload.trace` — canonical, content-addressable
  :class:`TraceSpec` scenarios materialised into deterministic
  operation streams (query mixes, organic update streams, adversarial
  poison schedules);
* :mod:`repro.workload.backends` — every index structure behind one
  batched, updatable serving surface, with rebuild/retrain cycles and
  an optional TRIM sanitizer at the retrain boundary;
* :mod:`repro.workload.simulator` — the replay loop recording
  latency percentiles, throughput proxies, error-bound drift, retrain
  triggers, and poison amplification over time.

The ``workload`` CLI target (:mod:`repro.experiments.workload_serving`)
runs scenario×backend×schedule grids of these on the
:class:`repro.runtime.SweepEngine`.
"""

from .backends import (
    BACKENDS,
    BinarySearchBackend,
    BTreeBackend,
    DynamicBackend,
    LinearBackend,
    RMIBackend,
    ServingBackend,
    make_backend,
)
from .simulator import ServingReport, ServingSimulator
from .trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_NAMES,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    POISON_SCHEDULES,
    QUERY_MIXES,
    Trace,
    TraceSpec,
    generate_trace,
)

__all__ = [
    "TraceSpec",
    "Trace",
    "generate_trace",
    "QUERY_MIXES",
    "POISON_SCHEDULES",
    "OP_QUERY",
    "OP_INSERT",
    "OP_DELETE",
    "OP_MODIFY",
    "OP_RANGE",
    "OP_POISON",
    "OP_NAMES",
    "ServingBackend",
    "BinarySearchBackend",
    "BTreeBackend",
    "LinearBackend",
    "RMIBackend",
    "DynamicBackend",
    "BACKENDS",
    "make_backend",
    "ServingSimulator",
    "ServingReport",
]
