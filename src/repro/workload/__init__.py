"""Streaming workloads: trace generation + an online serving simulator.

The paper's attacks are evaluated as static snapshots; this package
makes the threat model *online*.  Three layers:

* :mod:`repro.workload.trace` — canonical, content-addressable
  :class:`TraceSpec` scenarios materialised into deterministic
  operation streams (query mixes, organic update streams, adversarial
  poison schedules);
* :mod:`repro.workload.backends` — every index structure behind one
  batched, updatable serving surface, with rebuild/retrain cycles and
  an optional TRIM sanitizer at the retrain boundary;
* :mod:`repro.workload.simulator` — the replay loop recording
  latency percentiles, throughput proxies, error-bound drift, retrain
  triggers, and poison amplification over time, with feedback ports
  that turn the replay into a control loop;
* :mod:`repro.workload.closedloop` — the policies on those ports:
  arrival-rate models (rate-driven streams), adaptive adversaries
  reacting to observed latency, and the TRIM auto-tuner.

The ``workload`` and ``closedloop`` CLI targets
(:mod:`repro.experiments.workload_serving`,
:mod:`repro.experiments.closedloop_serving`) run scenario grids of
these on the :class:`repro.runtime.SweepEngine`.
"""

from .backends import (
    BACKENDS,
    BinarySearchBackend,
    BTreeBackend,
    DynamicBackend,
    LinearBackend,
    RMIBackend,
    ServingBackend,
    make_backend,
)
from .closedloop import (
    ADVERSARIES,
    ARRIVALS,
    AdaptiveAdversary,
    ArrivalModel,
    ConstantArrival,
    DiurnalArrival,
    HillClimbAdversary,
    LatencyEscalationAdversary,
    ObliviousDripAdversary,
    PoissonArrival,
    RetrainBackoffAdversary,
    TrimAutoTuner,
    make_adversary,
    make_arrival,
)
from .simulator import (
    ServingReport,
    ServingSimulator,
    TickObservation,
    TunerDecision,
    last_finite,
)
from .trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_NAMES,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    POISON_SCHEDULES,
    QUERY_MIXES,
    TENANT_LAYOUTS,
    Trace,
    TraceSpec,
    generate_rate_driven_trace,
    generate_trace,
)

__all__ = [
    "TraceSpec",
    "Trace",
    "generate_trace",
    "generate_rate_driven_trace",
    "QUERY_MIXES",
    "POISON_SCHEDULES",
    "TENANT_LAYOUTS",
    "OP_QUERY",
    "OP_INSERT",
    "OP_DELETE",
    "OP_MODIFY",
    "OP_RANGE",
    "OP_POISON",
    "OP_NAMES",
    "ServingBackend",
    "BinarySearchBackend",
    "BTreeBackend",
    "LinearBackend",
    "RMIBackend",
    "DynamicBackend",
    "BACKENDS",
    "make_backend",
    "ServingSimulator",
    "ServingReport",
    "TickObservation",
    "TunerDecision",
    "last_finite",
    "ArrivalModel",
    "ConstantArrival",
    "PoissonArrival",
    "DiurnalArrival",
    "ARRIVALS",
    "make_arrival",
    "AdaptiveAdversary",
    "ObliviousDripAdversary",
    "LatencyEscalationAdversary",
    "HillClimbAdversary",
    "RetrainBackoffAdversary",
    "ADVERSARIES",
    "make_adversary",
    "TrimAutoTuner",
]
