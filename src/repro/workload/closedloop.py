"""Closed-loop serving: arrival rates, adaptive adversaries, auto-tuning.

PR 3 made the threat model *online*; this module closes the loop.
Three pluggable policy families, all deterministic in their seeds and
the observation stream, so closed-loop cells keep the jobs/executor
parity guarantee of everything else on the sweep engine:

* :class:`ArrivalModel` — ops-per-tick processes (``constant``, a
  Poisson-like deterministic-counting stream, a periodic ``diurnal``
  ramp) that turn a :class:`~repro.workload.trace.TraceSpec` from a
  fixed op count into a rate-driven stream, via
  :func:`~repro.workload.trace.generate_rate_driven_trace` and the
  simulator's ``tick_sizes``.
* :class:`AdaptiveAdversary` — attackers on the simulator's feedback
  port.  Unlike the trace's oblivious poison schedules, these *watch*
  the per-tick :class:`~repro.workload.simulator.TickObservation` and
  decide each next-tick dose: ``escalate`` doubles its dose while the
  observed amplification sits below target and dumps its remaining
  budget near the end (forcing one last poisoned retrain instead of
  stranding keys in the delta buffer, where the sample lookups never
  see them); ``hillclimb`` walks a crafted-cluster placement through
  the key domain following observed p95; ``backoff`` goes quiet for a
  few ticks whenever it sees a retrain (the cycle a rate-limiting
  defense would watch).
* :class:`TrimAutoTuner` — the defense side of the loop: EMAs of
  observed amplification and key churn drive the TRIM keep-fraction
  and the rebuild threshold through the backends' tuner hooks.  The
  keep-fraction rule is monotone by construction — more observed
  poison damage can only tighten (never relax) the screen — which the
  hypothesis suite pins.

Every policy draws any randomness through ``stable_seed_words`` and
keeps all state inside the object, so one cell = fresh policies =
bit-identical replays in any worker of any resumed run.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.greedy import greedy_poison
from ..data.keyset import Domain, KeySet
from ..runtime import stable_seed_words
from .simulator import TickObservation, TunerDecision

__all__ = [
    "ArrivalModel", "ConstantArrival", "PoissonArrival",
    "DiurnalArrival", "ARRIVALS", "make_arrival",
    "AdaptiveAdversary", "ObliviousDripAdversary",
    "LatencyEscalationAdversary", "HillClimbAdversary",
    "RetrainBackoffAdversary", "ADVERSARIES", "make_adversary",
    "TrimAutoTuner",
]


# ----------------------------------------------------------------------
# Arrival-rate models
# ----------------------------------------------------------------------

class ArrivalModel:
    """Deterministic ops-per-tick process.

    ``ops_for_tick`` is random-access — tick ``t``'s count never
    depends on which ticks were asked before it — so a resumed or
    fanned-out run regenerates identical tick sizes from the model's
    parameters alone.
    """

    name = "abstract"

    def ops_for_tick(self, tick: int) -> int:
        """Operations arriving in tick ``tick`` (non-negative)."""
        raise NotImplementedError

    def tick_sizes(self, n_ticks: int) -> np.ndarray:
        """The first ``n_ticks`` counts, ready for the simulator."""
        if n_ticks < 1:
            raise ValueError(f"need at least one tick: {n_ticks}")
        return np.asarray([self.ops_for_tick(t) for t in range(n_ticks)],
                          dtype=np.int64)

    @staticmethod
    def _validate_rate(rate: float) -> None:
        if not rate > 0:
            raise ValueError(f"arrival rate must be positive: {rate}")

    @staticmethod
    def _validate_tick(tick: int) -> None:
        if tick < 0:
            raise ValueError(f"tick must be non-negative: {tick}")


class ConstantArrival(ArrivalModel):
    """The fixed-ops-per-tick stream every open-loop replay assumes."""

    name = "constant"

    def __init__(self, rate: float):
        self._validate_rate(rate)
        self._rate = int(round(rate))
        if self._rate < 1:
            raise ValueError(f"constant rate rounds to zero: {rate}")

    def ops_for_tick(self, tick: int) -> int:
        self._validate_tick(tick)
        return self._rate


class PoissonArrival(ArrivalModel):
    """Poisson-like deterministic counting.

    Each tick's count is a Poisson draw from a stream seeded by
    ``stable_seed_words(seed, "arrival-poisson", tick)`` — the same
    count in every process, every resumed run, and regardless of
    query order, which is what "deterministic counting" means here.
    Zero-op ticks are legitimate output (the simulator records NaN
    percentiles for them, and finals fall back to the last finite
    tick).
    """

    name = "poisson"

    def __init__(self, rate: float, seed: int = 0):
        self._validate_rate(rate)
        self._rate = float(rate)
        self._seed = int(seed)

    def ops_for_tick(self, tick: int) -> int:
        self._validate_tick(tick)
        rng = np.random.default_rng(stable_seed_words(
            self._seed, "arrival-poisson", tick))
        return int(rng.poisson(self._rate))


class DiurnalArrival(ArrivalModel):
    """A periodic ramp: load swings around the base rate.

    ``rate(t) = base * (1 + amplitude * sin(2π * (t mod period) /
    period))``, rounded.  The phase is computed from ``t mod period``,
    so the series is *exactly* periodic (``ops_for_tick(t + period) ==
    ops_for_tick(t)``, no floating-point drift) and non-negative
    whenever ``amplitude <= 1``.
    """

    name = "diurnal"

    def __init__(self, rate: float, period: int = 24,
                 amplitude: float = 0.5):
        self._validate_rate(rate)
        if period < 2:
            raise ValueError(f"period must span ticks: {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1] to keep rates "
                f"non-negative: {amplitude}")
        self._rate = float(rate)
        self._period = int(period)
        self._amplitude = float(amplitude)

    def ops_for_tick(self, tick: int) -> int:
        self._validate_tick(tick)
        phase = (tick % self._period) / self._period
        swing = 1.0 + self._amplitude * math.sin(2.0 * math.pi * phase)
        return int(round(self._rate * swing))


ARRIVALS: dict[str, type[ArrivalModel]] = {
    cls.name: cls
    for cls in (ConstantArrival, PoissonArrival, DiurnalArrival)
}


def make_arrival(name: str, rate: float, seed: int = 0,
                 **kwargs: Any) -> ArrivalModel:
    """Instantiate a registered arrival model.

    ``seed`` only reaches the models that draw randomness; passing it
    for ``constant``/``diurnal`` is allowed (and ignored) so callers
    can treat the registry uniformly.
    """
    try:
        cls = ARRIVALS[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival model {name!r}; known: {sorted(ARRIVALS)}"
        ) from None
    if cls is PoissonArrival:
        return cls(rate, seed=seed, **kwargs)
    return cls(rate, **kwargs)


# ----------------------------------------------------------------------
# Adaptive adversaries
# ----------------------------------------------------------------------

class AdaptiveAdversary:
    """An attacker on the simulator's feedback port.

    Subclasses implement ``_next_keys(observation)``; this base class
    owns the budget ledger and the no-op guard for the final tick
    (keys emitted at the last observation have no stream left to land
    in, so a policy never wastes budget there).  Instances are
    single-replay: construct a fresh one per cell.
    """

    name = "abstract"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int):
        if budget < 1:
            raise ValueError(f"adversary needs a budget: {budget}")
        self._base = np.sort(np.asarray(base_keys, dtype=np.int64))
        self._domain = domain
        self._budget = int(budget)
        self._emitted = 0
        self._rng = np.random.default_rng(stable_seed_words(
            seed, "adaptive-adversary", self.name))

    @property
    def budget(self) -> int:
        """Total crafted keys this adversary may ever emit."""
        return self._budget

    @property
    def remaining(self) -> int:
        """Budget not yet spent."""
        return self._budget - self._emitted

    def __call__(self, obs: TickObservation) -> "np.ndarray | None":
        if self.remaining <= 0:
            return None
        if obs.tick >= obs.ticks_total - 1:
            return None  # nothing lands after the final tick
        keys = np.asarray(self._next_keys(obs), dtype=np.int64)
        keys = keys[:self.remaining]
        if keys.size == 0:
            return None
        self._emitted += int(keys.size)
        return keys

    def _next_keys(self, obs: TickObservation) -> np.ndarray:
        raise NotImplementedError


class _PooledAdversary(AdaptiveAdversary):
    """Releases a pre-crafted pool; the policy decides *when*.

    By default the pool is Algorithm 1 output against the base keys —
    exactly what the oblivious trace schedules inject.  A caller may
    pass a stronger ``pool`` (e.g. Algorithm 2's architecture-aware
    keys, as the ``closedloop`` grid does for every policy including
    the oblivious baseline), and because every policy of a grid shares
    the same pool, any advantage one shows over another is *pure
    timing* — the information carried by the feedback port, never
    better keys.
    """

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 pool: "np.ndarray | None" = None):
        super().__init__(base_keys, domain, budget, seed)
        if pool is None:
            keyset = KeySet(self._base, domain=domain)
            pool = np.asarray(
                greedy_poison(keyset, budget).poison_keys,
                dtype=np.int64)
        self._pool = np.asarray(pool, dtype=np.int64)[:budget]
        # Crafting may exhaust the key space early; the ledger must
        # agree with what can actually be emitted.
        self._budget = min(self._budget, int(self._pool.size))

    def _take(self, count: int) -> np.ndarray:
        return self._pool[self._emitted:self._emitted + max(count, 0)]


class ObliviousDripAdversary(_PooledAdversary):
    """The oblivious baseline, expressed as an injection policy.

    Releases the greedy pool at a fixed, even pace — the trace
    schedules' ``drip`` — using nothing from the observation but the
    clock (its own schedule knowledge, not feedback).  Running the
    oblivious arm through the same port as the adaptive ones keeps an
    adaptive-vs-oblivious grid *same-world*: both cells replay the
    identical trace over the identical base keys with the identical
    pool, so any amplification gap is attributable to the policy
    alone.
    """

    name = "oblivious"

    def _next_keys(self, obs: TickObservation) -> np.ndarray:
        chances = max(1, obs.ticks_total - 1)
        dose = -(-self.budget // chances)  # ceil: spend the whole pool
        return self._take(dose)


class LatencyEscalationAdversary(_PooledAdversary):
    """Latency-threshold escalation.

    Starts with a probe dose and doubles it every tick the observed
    amplification (the latency ratio against the clean baseline) still
    sits below ``target_amplification``; once the target is reached it
    falls back to the probe dose, holding the damage with minimal
    spend.  In the last ``endgame_ticks`` injection opportunities it
    dumps the remaining budget: the burst crosses the victim's rebuild
    threshold, so the *final* model trains on the full pool instead of
    stranding the tail in a delta buffer that model-hit lookups never
    pay for.
    """

    name = "escalate"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 pool: "np.ndarray | None" = None,
                 target_amplification: float = 1.5,
                 initial_dose: int = 1, endgame_ticks: int = 2):
        super().__init__(base_keys, domain, budget, seed, pool=pool)
        if target_amplification <= 1.0:
            raise ValueError(
                f"target amplification must exceed the clean baseline: "
                f"{target_amplification}")
        if initial_dose < 1 or endgame_ticks < 1:
            raise ValueError("initial_dose and endgame_ticks must be "
                             ">= 1")
        self._target = float(target_amplification)
        self._initial_dose = int(initial_dose)
        self._dose = int(initial_dose)
        self._endgame = int(endgame_ticks)

    def _next_keys(self, obs: TickObservation) -> np.ndarray:
        chances_left = obs.ticks_total - 1 - obs.tick
        if chances_left <= self._endgame:
            return self._take(self.remaining)
        if obs.amplification < self._target:
            self._dose = min(self._dose * 2, self.remaining)
        else:
            self._dose = self._initial_dose
        return self._take(self._dose)


class HillClimbAdversary(AdaptiveAdversary):
    """Hill-climbing poison *placement* over observed p95.

    Crafts dense clusters of consecutive unoccupied keys around a
    moving centre — a steep local CDF ramp the victim's models must
    absorb — and walks the centre through the domain: keep direction
    while the observed p95 keeps rising, otherwise turn around and
    halve the step.  All the attacker ever sees is latency; the walk
    is its gradient estimate.  Ends with the same remaining-budget
    dump as the escalation policy.
    """

    name = "hillclimb"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int, dose: int = 8,
                 endgame_ticks: int = 2):
        super().__init__(base_keys, domain, budget, seed)
        if dose < 1 or endgame_ticks < 1:
            raise ValueError("dose and endgame_ticks must be >= 1")
        self._dose = int(dose)
        self._endgame = int(endgame_ticks)
        self._crafted: set[int] = set()
        self._centre = (domain.lo + domain.hi) // 2
        self._step = max(1, domain.size // 8)
        self._min_step = max(1, domain.size // 256)
        self._direction = 1
        self._prev_p95 = float("nan")

    def _next_keys(self, obs: TickObservation) -> np.ndarray:
        if math.isfinite(self._prev_p95) and math.isfinite(obs.p95):
            if obs.p95 <= self._prev_p95:  # placement not paying off
                self._direction = -self._direction
                self._step = max(self._step // 2, self._min_step)
        self._prev_p95 = obs.p95
        self._centre = int(np.clip(
            self._centre + self._direction * self._step,
            self._domain.lo, self._domain.hi))
        chances_left = obs.ticks_total - 1 - obs.tick
        count = (self.remaining if chances_left <= self._endgame
                 else self._dose)
        return self._craft_cluster(self._centre, count)

    def _craft_cluster(self, centre: int, count: int) -> np.ndarray:
        """``count`` unoccupied keys packed outward from ``centre``."""
        out: list[int] = []
        offset = 0
        while len(out) < count and offset <= self._domain.size:
            for candidate in (centre + offset, centre - offset):
                if len(out) >= count:
                    break
                if candidate < self._domain.lo or \
                        candidate > self._domain.hi:
                    continue
                if candidate in self._crafted:
                    continue
                slot = int(np.searchsorted(self._base, candidate))
                if (slot < self._base.size
                        and int(self._base[slot]) == candidate):
                    continue
                out.append(candidate)
                self._crafted.add(candidate)
            offset += 1
        return np.asarray(out, dtype=np.int64)


class RetrainBackoffAdversary(_PooledAdversary):
    """Constant low-and-slow dosing with back-off on retrain detection.

    Whenever the observation shows a retrain happened (the defense's
    screening moment, and the event a rate limiter would alarm on),
    the adversary halves its dose and goes quiet for
    ``backoff_ticks`` — the stealthy counterpart to the escalation
    policy, trading damage for detection-surface.
    """

    name = "backoff"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 pool: "np.ndarray | None" = None, dose: int = 8,
                 backoff_ticks: int = 2):
        super().__init__(base_keys, domain, budget, seed, pool=pool)
        if dose < 1 or backoff_ticks < 1:
            raise ValueError("dose and backoff_ticks must be >= 1")
        self._dose = int(dose)
        self._backoff = int(backoff_ticks)
        self._quiet = 0

    def _next_keys(self, obs: TickObservation) -> np.ndarray:
        if obs.retrains_delta > 0:
            self._quiet = self._backoff
            self._dose = max(1, self._dose // 2)
        if self._quiet > 0:
            self._quiet -= 1
            return np.empty(0, dtype=np.int64)
        return self._take(self._dose)


ADVERSARIES: dict[str, type[AdaptiveAdversary]] = {
    cls.name: cls
    for cls in (ObliviousDripAdversary, LatencyEscalationAdversary,
                HillClimbAdversary, RetrainBackoffAdversary)
}


def make_adversary(name: str, base_keys: np.ndarray, domain: Domain,
                   budget: int, seed: int,
                   pool: "np.ndarray | None" = None,
                   **kwargs: Any) -> AdaptiveAdversary:
    """Instantiate a registered injection policy.

    ``"oblivious"`` is in the registry on purpose: running the
    baseline schedule through the same feedback port keeps an
    adaptive-vs-oblivious grid same-world (identical trace, identical
    pool — only the policy differs).  ``pool`` pre-crafted keys reach
    the pooled policies; ``hillclimb`` crafts its own clusters and
    ignores it by design.
    """
    try:
        cls = ADVERSARIES[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; known: "
            f"{sorted(ADVERSARIES)}") from None
    if issubclass(cls, _PooledAdversary):
        kwargs = {"pool": pool, **kwargs}
    return cls(base_keys, domain, budget, seed, **kwargs)


# ----------------------------------------------------------------------
# Defense auto-tuning
# ----------------------------------------------------------------------

class TrimAutoTuner:
    """Closes the defense side of the loop.

    Watches the per-tick observations and turns the two knobs the
    backends expose.  Decisions are pure functions of the observation
    stream — no randomness — so a tuned cell is exactly as
    deterministic as a fixed one.

    **Retrain deferral (the churn knob).**  The per-tick live-key
    delta is the defender's cheapest anomaly signal: organic churn is
    steady, while an adaptive attacker forcing its pool into the next
    model arrives as a burst.  When a tick's delta exceeds
    ``burst_factor`` times the running average, the tuner raises the
    rebuild threshold to ``boost``× base for ``hold_ticks`` ticks
    (decaying back geometrically afterwards) — *don't retrain on a
    burst*.  Deferred, the dumped keys strand in the delta side table,
    which model-resident lookups never pay for, instead of training
    the next model.  This is the counter to dump-style endgames: an
    escalation ramp trips the detector before the final dump lands.

    **TRIM screen (the amplification knob).**  ``keep_fraction =
    clip(1 - keep_gain * max(0, amp_ema - 1 - keep_deadband),
    keep_floor, 1)`` — *monotone*: a pointwise-higher amplification
    history can never yield a looser screen (pinned by the hypothesis
    suite).  At 1.0 the screen is armed but passes everything.  The
    deadband is deliberate: reproducing Section VI, TRIM's
    residual-based selection cannot cheaply separate CDF-poisoning
    keys from their legitimate neighbours, and quarantining
    legitimate keys moves their lookups onto the slow side list — so
    the screen only tightens once the model is damaged enough that
    mis-quarantine is the lesser cost.
    """

    def __init__(self, base_threshold: float = 0.1, alpha: float = 0.5,
                 keep_gain: float = 0.5, keep_deadband: float = 0.5,
                 keep_floor: float = 0.85, burst_factor: float = 2.0,
                 boost: float = 2.5, hold_ticks: int = 6,
                 decay: float = 0.7):
        if not 0.0 < base_threshold <= 1.0:
            raise ValueError(
                f"base threshold must be in (0, 1]: {base_threshold}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if keep_gain < 0.0 or keep_deadband < 0.0:
            raise ValueError("keep gain and deadband must be "
                             "non-negative")
        if not 0.0 < keep_floor <= 1.0:
            raise ValueError(
                f"keep floor must be in (0, 1]: {keep_floor}")
        if burst_factor < 1.0:
            raise ValueError(
                f"burst factor must be >= 1: {burst_factor}")
        if boost < 1.0:
            raise ValueError(f"boost must be >= 1: {boost}")
        if hold_ticks < 1:
            raise ValueError(f"hold_ticks must be >= 1: {hold_ticks}")
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1): {decay}")
        self._base_threshold = float(base_threshold)
        self._alpha = float(alpha)
        self._keep_gain = float(keep_gain)
        self._keep_deadband = float(keep_deadband)
        self._keep_floor = float(keep_floor)
        self._burst_factor = float(burst_factor)
        self._boosted = min(1.0, float(boost) * base_threshold)
        self._hold_ticks = int(hold_ticks)
        self._decay = float(decay)
        self._amp_ema = 1.0
        self._churn_ema: "float | None" = None
        self._prev_n_keys: "int | None" = None
        self._hold = 0
        self._threshold = float(base_threshold)

    def __call__(self, obs: TickObservation) -> TunerDecision:
        amp = obs.amplification
        if math.isfinite(amp):
            self._amp_ema += self._alpha * (amp - self._amp_ema)
        if self._prev_n_keys is not None:
            churn = float(abs(obs.n_keys - self._prev_n_keys))
            if self._churn_ema is None:
                self._churn_ema = churn
            else:
                if churn > self._burst_factor * max(self._churn_ema,
                                                    1.0):
                    self._hold = self._hold_ticks
                self._churn_ema += self._alpha * (churn
                                                  - self._churn_ema)
        self._prev_n_keys = obs.n_keys
        if self._hold > 0:
            self._hold -= 1
            self._threshold = self._boosted
        else:
            self._threshold = (self._base_threshold
                               + (self._threshold
                                  - self._base_threshold)
                               * self._decay)
        excess = max(0.0, self._amp_ema - 1.0 - self._keep_deadband)
        keep = min(1.0, max(self._keep_floor,
                            1.0 - self._keep_gain * excess))
        return TunerDecision(keep_fraction=keep,
                             rebuild_threshold=self._threshold)
