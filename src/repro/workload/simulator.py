"""Replay a trace against a live backend and record its vitals.

The simulator consumes a :class:`~repro.workload.trace.Trace` in
order, batching runs of consecutive point queries through the
backend's vectorized ``lookup_batch`` (the hot path).  State
mutations are applied strictly one operation at a time: a backend's
rebuild threshold fires at exactly the same op whether the trace is
replayed batched or op-at-a-time, so the recorded metrics are
invariant under batching and tick size.

All recorded metrics are **deterministic cost proxies** — probe
counts, not nanoseconds — which is what lets a workload cell produce
bit-identical results at ``jobs=1`` and ``jobs=N`` on either executor.
Wall-clock is measured too (for the benchmark trajectory) but kept
out of the result payload.

Per tick (a fixed op-count window, or a rate-driven variable one when
``tick_sizes`` is given) the report records:

* ``p50``/``p95``/``p99`` — probe-count percentiles over the tick's
  read operations (the latency story);
* ``mean_probes`` — the throughput proxy (ops per probe ~ how many
  operations a fixed probe budget serves);
* ``error_bound`` — the backend's worst-case search width (model
  drift under poisoning);
* ``retrains`` — cumulative retrain/rebuild cycles;
* ``amplification`` — lookup cost over a fixed probe sample divided
  by its pre-replay baseline: how much damage the stream (and the
  drip-fed poison in it) has done so far;
* ``n_keys`` — live key count.

Closed-loop mode
----------------
The replay becomes a control loop when any of ``tick_sizes``,
``adversary``, or ``tuner`` is supplied.  At every tick boundary the
simulator publishes a :class:`TickObservation` (the per-tick series
row, percentiles backfilled to the last finite value so a read-free
tick never feeds NaN into a policy) through two feedback ports:

* ``adversary(observation)`` may return crafted keys; they are
  injected at the start of the *next* tick (an attacker reacting to
  observed latency) — as synthetic poison ops ahead of the tick's
  stream, so retrain timing stays op-exact on either replay path;
* ``tuner(observation)`` may return a :class:`TunerDecision`; the
  simulator applies it to the backend's ``set_trim_keep_fraction`` /
  ``set_rebuild_threshold`` hooks and logs the values now in force.

Closed-loop replays carry three extra series — ``injected`` (crafted
keys landed per tick), ``keep_fraction`` and ``rebuild_threshold``
(defense settings entering the next tick; ``keep_fraction`` is NaN
while TRIM is off) — so fixed and tuned cells of one grid share one
artifact shape.  Both ports are plain callables of the observation
alone; as long as they are deterministic, the whole loop is.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..io import json_float
from ..observe.metrics import MetricsRegistry
from ..observe.metrics import active as observe_active
from ..runtime import stable_seed_words
from .backends import ServingBackend
from .trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    Trace,
)

__all__ = ["ServingReport", "ServingSimulator", "TickObservation",
           "TunerDecision", "last_finite"]

_READ_OPS = (OP_QUERY, OP_RANGE)
_SERIES = ("p50", "p95", "p99", "mean_probes", "error_bound",
           "retrains", "amplification", "n_keys")
_LOOP_SERIES = ("injected", "keep_fraction", "rebuild_threshold")


def last_finite(values: Sequence[float], default: float = 0.0) -> float:
    """The most recent finite value of a series, else ``default``.

    The summary-field contract of a replay: a trace that *ends* on a
    read-free (churn-only) tick records NaN percentiles for that tick,
    and a final taken naively from the tail would leak the NaN into
    the JSON payload and into any policy watching the feedback port.
    Falling back to the last finite tick keeps finals — and closed-loop
    observations — well-defined whenever any earlier tick measured.

    Scans the tail by index — no copy of the series — because the
    feedback ports call this four times per tick over ever-growing
    series (copying made the observation step O(ticks²) per replay).
    """
    for i in range(len(values) - 1, -1, -1):
        value = values[i]
        if math.isfinite(value):
            return float(value)
    return default


@dataclass(frozen=True)
class TickObservation:
    """What the feedback ports see at one tick boundary.

    Mirrors the per-tick series row just recorded, with percentiles
    backfilled via :func:`last_finite` (NaN only before the first read
    of the whole replay).  ``retrains_delta`` is the cycle count since
    the previous tick — the signal a retrain-detecting adversary keys
    on; ``injected_total`` counts the adversary's own keys landed so
    far, so a policy can pace a budget without private bookkeeping.
    """

    tick: int
    ticks_total: int
    p50: float
    p95: float
    p99: float
    mean_probes: float
    error_bound: float
    retrains: int
    retrains_delta: int
    amplification: float
    n_keys: int
    injected_total: int


@dataclass(frozen=True)
class TunerDecision:
    """A defense tuner's knob settings for the ticks ahead.

    ``keep_fraction`` is the TRIM screen (``None`` disarms it);
    ``rebuild_threshold`` retargets the compaction trigger.  Values
    pass through the backend's validating setters, so an out-of-range
    decision fails loudly rather than silently clamping.
    """

    keep_fraction: float | None
    rebuild_threshold: float


#: Feedback-port signatures (policy objects are plain callables).
AdversaryPort = Callable[[TickObservation], "np.ndarray | None"]
TunerPort = Callable[[TickObservation], "TunerDecision | None"]


@dataclass(frozen=True, eq=False)  # array fields: identity equality
class ServingReport:
    """Everything one replay measured.

    ``series`` maps each name in ``p50 p95 p99 mean_probes error_bound
    retrains amplification n_keys`` — plus ``injected keep_fraction
    rebuild_threshold`` for closed-loop replays — to a per-tick float64
    array (a tick with no read op carries NaN percentiles; the summary
    fields fall back to the last finite tick instead of propagating
    it).  ``wall_seconds`` is the only non-deterministic field and is
    deliberately excluded from :meth:`to_dict`.  ``tick_ops`` is 0 for
    rate-driven replays, whose tick widths vary.
    """

    backend: str
    spec_digest: str
    n_ops: int
    tick_ops: int
    series: dict[str, np.ndarray]
    p50: float
    p95: float
    p99: float
    mean_probes: float
    total_probes: int
    found_fraction: float
    retrains: int
    final_amplification: float
    max_error_bound: float
    final_n_keys: int
    ops_by_kind: dict[str, int]
    injected_poison: int
    #: Adversary keys returned after the final tick: no stream was
    #: left to land them, so the budget ledger reconciles as
    #: spent == injected_poison + discarded_poison.
    discarded_poison: int
    wall_seconds: float = field(compare=False)

    @property
    def n_ticks(self) -> int:
        return int(self.series["p50"].size)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe, deterministic summary (no wall-clock)."""
        return {
            "backend": self.backend,
            "spec_digest": self.spec_digest,
            "n_ops": self.n_ops,
            "tick_ops": self.tick_ops,
            "n_ticks": self.n_ticks,
            "p50": json_float(self.p50),
            "p95": json_float(self.p95),
            "p99": json_float(self.p99),
            "mean_probes": json_float(self.mean_probes),
            "total_probes": self.total_probes,
            "found_fraction": json_float(self.found_fraction),
            "retrains": self.retrains,
            "final_amplification": json_float(self.final_amplification),
            "max_error_bound": json_float(self.max_error_bound),
            "final_n_keys": self.final_n_keys,
            "ops_by_kind": dict(self.ops_by_kind),
            "injected_poison": self.injected_poison,
            "discarded_poison": self.discarded_poison,
        }


class ServingSimulator:
    """Drives one backend through one trace.

    Parameters
    ----------
    backend:
        A freshly built :class:`ServingBackend` over the trace's base
        keys (the simulator asserts nothing about prior state — a
        pre-warmed backend is a legitimate scenario).
    trace:
        The operation stream to replay.
    tick_ops:
        Operations per metrics tick (fixed-width ticks).
    probe_sample_size:
        Size of the fixed key sample used for the amplification
        series; drawn deterministically from the trace's base keys
        and never counted into the op metrics.
    tick_sizes:
        Optional per-tick operation counts (a rate-driven stream, as
        produced by an :class:`~repro.workload.closedloop.ArrivalModel`).
        Must be non-negative and sum to the trace's op count; zero-op
        ticks are legal and record NaN percentiles.  Overrides
        ``tick_ops``.
    adversary:
        Optional feedback port: called with a :class:`TickObservation`
        after every tick; returned keys are injected at the start of
        the next tick.  Keys returned after the final tick have no
        stream left to land in; they are discarded and counted in the
        report's ``discarded_poison`` (so an adversary's budget ledger
        always reconciles: spent == injected + discarded).
    tuner:
        Optional defense port: called after every tick (after the
        adversary observes, before its next keys land); a returned
        :class:`TunerDecision` is applied through the backend's tuner
        hooks.
    columnar:
        Replay each tick through the backend's columnar
        ``replay_ops`` fast path (the default) instead of the scalar
        per-op feed.  The two paths are pinned bit-identical — same
        series, finals, and retrain indices — by the parity suite;
        the flag exists so that suite (and anyone debugging a
        backend) can run the reference path.
    """

    def __init__(self, backend: ServingBackend, trace: Trace,
                 tick_ops: int = 200, probe_sample_size: int = 64,
                 tick_sizes: "Sequence[int] | None" = None,
                 adversary: "AdversaryPort | None" = None,
                 tuner: "TunerPort | None" = None,
                 columnar: bool = True,
                 metrics: "MetricsRegistry | None" = None):
        if tick_ops < 1:
            raise ValueError(f"tick_ops must be >= 1: {tick_ops}")
        if probe_sample_size < 1:
            raise ValueError(
                "probe_sample_size must be >= 1 (the amplification "
                f"baseline is its mean probe cost): {probe_sample_size}")
        self._backend = backend
        self._trace = trace
        self._tick_ops = tick_ops
        self._tick_sizes = None
        if tick_sizes is not None:
            sizes = np.asarray(tick_sizes, dtype=np.int64)
            if sizes.size == 0 or (sizes < 0).any():
                raise ValueError(
                    "tick_sizes must be a non-empty sequence of "
                    f"non-negative counts: {tick_sizes!r}")
            if int(sizes.sum()) != trace.n_ops:
                raise ValueError(
                    f"tick_sizes sum to {int(sizes.sum())} but the "
                    f"trace holds {trace.n_ops} ops")
            self._tick_sizes = sizes
        self._adversary = adversary
        self._tuner = tuner
        self._columnar = columnar
        # Opt-in instrumentation: an explicit registry wins, else the
        # process-installed one (``repro.observe.install``), else off
        # — in which case every hook below is one ``is None`` check.
        self._metrics = (metrics if metrics is not None
                         else observe_active())
        if self._metrics is not None:
            backend.set_metrics(self._metrics)
        self._closed_loop = (tick_sizes is not None
                             or adversary is not None
                             or tuner is not None)
        rng = np.random.default_rng(stable_seed_words(
            trace.spec.seed, "probe-sample", trace.spec.digest))
        size = min(probe_sample_size, trace.base_keys.size)
        if size < 1:
            # probes.mean() over an empty sample is NaN, and a NaN
            # baseline silently poisons the whole amplification
            # series — fail here instead.
            raise ValueError(
                "cannot draw an amplification probe sample: the trace "
                "has no base keys")
        self._probe_sample = rng.choice(trace.base_keys, size=size,
                                        replace=False)

    # ------------------------------------------------------------------
    def _sample_cost(self) -> float:
        """Mean probes over the fixed sample (measurement only)."""
        _, probes = self._backend.lookup_batch(self._probe_sample)
        return float(probes.mean())

    def _tick_bounds(self) -> np.ndarray:
        """End index (exclusive) of every tick, covering all ops."""
        n = self._trace.n_ops
        if self._tick_sizes is not None:
            return np.cumsum(self._tick_sizes)
        n_ticks = -(-n // self._tick_ops)  # ceil
        return np.minimum(
            (np.arange(n_ticks, dtype=np.int64) + 1) * self._tick_ops, n)

    def run(self) -> ServingReport:
        """Replay the whole trace; returns the metrics report."""
        trace, backend = self._trace, self._backend
        kinds, keys, aux = trace.kinds, trace.keys, trace.aux
        n = trace.n_ops
        started = time.perf_counter()
        baseline = self._sample_cost()
        bounds = self._tick_bounds()

        names = _SERIES + (_LOOP_SERIES if self._closed_loop else ())
        series: dict[str, list[float]] = {name: [] for name in names}
        all_probes: list[np.ndarray] = []
        tick_probes: list[np.ndarray] = []
        found_total = 0
        query_total = 0
        injected_total = 0
        last_retrains = 0

        def close_tick(injected: int) -> None:
            merged = (np.concatenate(tick_probes) if tick_probes
                      else np.empty(0, dtype=np.int64))
            if merged.size:
                p50, p95, p99 = np.percentile(merged, (50, 95, 99))
                mean = float(merged.mean())
            else:
                p50 = p95 = p99 = mean = float("nan")
            series["p50"].append(float(p50))
            series["p95"].append(float(p95))
            series["p99"].append(float(p99))
            series["mean_probes"].append(mean)
            series["error_bound"].append(backend.error_bound())
            series["retrains"].append(float(backend.retrain_count))
            series["amplification"].append(
                self._sample_cost() / baseline)
            series["n_keys"].append(float(backend.n_keys))
            if self._closed_loop:
                series["injected"].append(float(injected))
            all_probes.extend(tick_probes)
            tick_probes.clear()

        def observe(tick: int) -> TickObservation:
            """The feedback ports' view of the tick just closed."""
            nonlocal last_retrains
            retrains = int(series["retrains"][-1])
            obs = TickObservation(
                tick=tick,
                ticks_total=int(bounds.size),
                p50=last_finite(series["p50"], float("nan")),
                p95=last_finite(series["p95"], float("nan")),
                p99=last_finite(series["p99"], float("nan")),
                mean_probes=last_finite(series["mean_probes"],
                                        float("nan")),
                error_bound=series["error_bound"][-1],
                retrains=retrains,
                retrains_delta=retrains - last_retrains,
                amplification=series["amplification"][-1],
                n_keys=int(series["n_keys"][-1]),
                injected_total=injected_total)
            last_retrains = retrains
            return obs

        # Columnar (default): each tick — adversary injections
        # prepended as synthetic poison ops — is one ``replay_ops``
        # call; the backend applies mutations as classified bulk
        # set operations and batches reads per rebuild-free segment,
        # firing every rebuild at the same op index the scalar feed
        # would.  Scalar (reference): runs of same-kind ops, never
        # across a tick boundary; only *stateless* reads are batched
        # (a query run is one lookup_batch call) and state mutations
        # apply strictly one op at a time.  Both ways the replay is
        # invariant under batching and tick size — a backend's
        # batch-level rebuild check never decides retrain timing.
        start = 0
        pending_inject = np.empty(0, dtype=np.int64)
        metrics = self._metrics
        for tick_index, tick_end in enumerate(bounds):
            tick_started = (time.perf_counter()
                            if metrics is not None else 0.0)
            tick_start_op = start
            injected_this_tick = int(pending_inject.size)
            if self._columnar:
                t_kinds = kinds[start:tick_end]
                t_keys = keys[start:tick_end]
                t_aux = aux[start:tick_end]
                if injected_this_tick:
                    t_kinds = np.concatenate([
                        np.full(injected_this_tick, OP_POISON,
                                dtype=kinds.dtype), t_kinds])
                    t_keys = np.concatenate([pending_inject, t_keys])
                    t_aux = np.concatenate([
                        np.zeros(injected_this_tick, dtype=np.int64),
                        t_aux])
                injected_total += injected_this_tick
                pending_inject = np.empty(0, dtype=np.int64)
                found, probes = backend.replay_ops(t_kinds, t_keys,
                                                   t_aux)
                if probes.size:
                    tick_probes.append(probes)
                is_query = t_kinds[(t_kinds == OP_QUERY)
                                   | (t_kinds == OP_RANGE)] == OP_QUERY
                found_total += int(found[is_query].sum())
                query_total += int(is_query.sum())
                start = tick_end
            else:
                for key in pending_inject:
                    backend.insert_batch(key[np.newaxis])
                injected_total += injected_this_tick
                pending_inject = np.empty(0, dtype=np.int64)
                while start < tick_end:
                    kind = kinds[start]
                    stop = start + 1
                    while stop < tick_end and kinds[stop] == kind:
                        stop += 1
                    run_keys = keys[start:stop]
                    if kind == OP_QUERY:
                        found, probes = backend.lookup_batch(run_keys)
                        tick_probes.append(probes)
                        found_total += int(found.sum())
                        query_total += int(found.size)
                    elif kind == OP_RANGE:
                        probes = np.asarray(
                            [backend.range_scan(int(lo), int(hi))
                             for lo, hi in zip(run_keys,
                                               aux[start:stop])],
                            dtype=np.int64)
                        tick_probes.append(probes)
                    elif kind in (OP_INSERT, OP_POISON):
                        for key in run_keys:
                            backend.insert_batch(key[np.newaxis])
                    elif kind == OP_DELETE:
                        for key in run_keys:
                            backend.delete_batch(key[np.newaxis])
                    elif kind == OP_MODIFY:
                        for key, new in zip(run_keys, aux[start:stop]):
                            backend.delete_batch(key[np.newaxis])
                            backend.insert_batch(new[np.newaxis])
                    else:  # pragma: no cover
                        raise ValueError(f"unknown op kind: {kind}")
                    start = stop
            close_tick(injected_this_tick)
            if metrics is not None:
                metrics.observe("serving.tick",
                                time.perf_counter() - tick_started)
                metrics.inc("serving.ticks")
                metrics.inc("serving.ops",
                            int(tick_end - tick_start_op)
                            + injected_this_tick)
                metrics.trace(
                    "serving.tick", tick=tick_index,
                    ops=int(tick_end - tick_start_op),
                    injected=injected_this_tick,
                    retrains=int(series["retrains"][-1]),
                    n_keys=int(series["n_keys"][-1]))
            if self._adversary is not None or self._tuner is not None:
                obs = observe(tick_index)
                if self._tuner is not None:
                    decision = self._tuner(obs)
                    if decision is not None:
                        # Model-free backends have no training set to
                        # screen; their TRIM knob is inert so one grid
                        # can attach the same tuner to every backend.
                        if backend.supports_trim:
                            backend.set_trim_keep_fraction(
                                decision.keep_fraction)
                        backend.set_rebuild_threshold(
                            decision.rebuild_threshold)
                if self._adversary is not None:
                    crafted = self._adversary(obs)
                    if crafted is not None:
                        pending_inject = np.asarray(crafted,
                                                    dtype=np.int64)
            if self._closed_loop:
                keep = backend.trim_keep_fraction
                series["keep_fraction"].append(
                    float("nan") if keep is None else float(keep))
                series["rebuild_threshold"].append(
                    float(backend.rebuild_threshold))

        probes_flat = (np.concatenate(all_probes) if all_probes
                       else np.empty(0, dtype=np.int64))
        if probes_flat.size:
            p50, p95, p99 = (float(v) for v in
                             np.percentile(probes_flat, (50, 95, 99)))
            mean = float(probes_flat.mean())
        else:
            # A read-free replay: fall back per the last-finite
            # contract (0.0 — no tick ever measured a read).
            p50 = last_finite(series["p50"])
            p95 = last_finite(series["p95"])
            p99 = last_finite(series["p99"])
            mean = last_finite(series["mean_probes"])
        error_bounds = np.asarray(series["error_bound"])
        return ServingReport(
            backend=backend.name,
            spec_digest=trace.spec.digest,
            n_ops=n,
            tick_ops=(0 if self._tick_sizes is not None
                      else self._tick_ops),
            series={name: np.asarray(values, dtype=np.float64)
                    for name, values in series.items()},
            p50=p50, p95=p95, p99=p99,
            mean_probes=mean,
            total_probes=int(probes_flat.sum()),
            found_fraction=(found_total / query_total if query_total
                            else 0.0),
            retrains=int(backend.retrain_count),
            final_amplification=last_finite(series["amplification"],
                                            1.0),
            max_error_bound=(float(error_bounds.max())
                             if error_bounds.size else 0.0),
            final_n_keys=int(backend.n_keys),
            ops_by_kind=trace.counts(),
            injected_poison=injected_total,
            discarded_poison=int(pending_inject.size),
            # repro: allow[REP003] -- wall_seconds is an advisory stats field, never compared or digested
            wall_seconds=time.perf_counter() - started)
