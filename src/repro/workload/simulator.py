"""Replay a trace against a live backend and record its vitals.

The simulator consumes a :class:`~repro.workload.trace.Trace` in
order, batching runs of consecutive point queries through the
backend's vectorized ``lookup_batch`` (the hot path).  State
mutations are applied strictly one operation at a time: a backend's
rebuild threshold fires at exactly the same op whether the trace is
replayed batched or op-at-a-time, so the recorded metrics are
invariant under batching and tick size.

All recorded metrics are **deterministic cost proxies** — probe
counts, not nanoseconds — which is what lets a workload cell produce
bit-identical results at ``jobs=1`` and ``jobs=N`` on either executor.
Wall-clock is measured too (for the benchmark trajectory) but kept
out of the result payload.

Per tick (a fixed op-count window) the report records:

* ``p50``/``p95``/``p99`` — probe-count percentiles over the tick's
  read operations (the latency story);
* ``mean_probes`` — the throughput proxy (ops per probe ~ how many
  operations a fixed probe budget serves);
* ``error_bound`` — the backend's worst-case search width (model
  drift under poisoning);
* ``retrains`` — cumulative retrain/rebuild cycles;
* ``amplification`` — lookup cost over a fixed probe sample divided
  by its pre-replay baseline: how much damage the stream (and the
  drip-fed poison in it) has done so far;
* ``n_keys`` — live key count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..io import json_float
from ..runtime import stable_seed_words
from .backends import ServingBackend
from .trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    Trace,
)

__all__ = ["ServingReport", "ServingSimulator"]

_READ_OPS = (OP_QUERY, OP_RANGE)
_SERIES = ("p50", "p95", "p99", "mean_probes", "error_bound",
           "retrains", "amplification", "n_keys")


@dataclass(frozen=True, eq=False)  # array fields: identity equality
class ServingReport:
    """Everything one replay measured.

    ``series`` maps each name in ``p50 p95 p99 mean_probes error_bound
    retrains amplification n_keys`` to a per-tick float64 array (a
    tick with no read op carries NaN percentiles).  ``wall_seconds``
    is the only non-deterministic field and is deliberately excluded
    from :meth:`to_dict`.
    """

    backend: str
    spec_digest: str
    n_ops: int
    tick_ops: int
    series: dict[str, np.ndarray]
    p50: float
    p95: float
    p99: float
    mean_probes: float
    total_probes: int
    found_fraction: float
    retrains: int
    final_amplification: float
    max_error_bound: float
    final_n_keys: int
    ops_by_kind: dict[str, int]
    wall_seconds: float = field(compare=False)

    @property
    def n_ticks(self) -> int:
        return int(self.series["p50"].size)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe, deterministic summary (no wall-clock)."""
        return {
            "backend": self.backend,
            "spec_digest": self.spec_digest,
            "n_ops": self.n_ops,
            "tick_ops": self.tick_ops,
            "n_ticks": self.n_ticks,
            "p50": json_float(self.p50),
            "p95": json_float(self.p95),
            "p99": json_float(self.p99),
            "mean_probes": json_float(self.mean_probes),
            "total_probes": self.total_probes,
            "found_fraction": json_float(self.found_fraction),
            "retrains": self.retrains,
            "final_amplification": json_float(self.final_amplification),
            "max_error_bound": json_float(self.max_error_bound),
            "final_n_keys": self.final_n_keys,
            "ops_by_kind": dict(self.ops_by_kind),
        }


class ServingSimulator:
    """Drives one backend through one trace.

    Parameters
    ----------
    backend:
        A freshly built :class:`ServingBackend` over the trace's base
        keys (the simulator asserts nothing about prior state — a
        pre-warmed backend is a legitimate scenario).
    trace:
        The operation stream to replay.
    tick_ops:
        Operations per metrics tick.
    probe_sample_size:
        Size of the fixed key sample used for the amplification
        series; drawn deterministically from the trace's base keys
        and never counted into the op metrics.
    """

    def __init__(self, backend: ServingBackend, trace: Trace,
                 tick_ops: int = 200, probe_sample_size: int = 64):
        if tick_ops < 1:
            raise ValueError(f"tick_ops must be >= 1: {tick_ops}")
        self._backend = backend
        self._trace = trace
        self._tick_ops = tick_ops
        rng = np.random.default_rng(stable_seed_words(
            trace.spec.seed, "probe-sample", trace.spec.digest))
        size = min(probe_sample_size, trace.base_keys.size)
        self._probe_sample = rng.choice(trace.base_keys, size=size,
                                        replace=False)

    # ------------------------------------------------------------------
    def _sample_cost(self) -> float:
        """Mean probes over the fixed sample (measurement only)."""
        _, probes = self._backend.lookup_batch(self._probe_sample)
        return float(probes.mean())

    def run(self) -> ServingReport:
        """Replay the whole trace; returns the metrics report."""
        trace, backend = self._trace, self._backend
        kinds, keys, aux = trace.kinds, trace.keys, trace.aux
        n = trace.n_ops
        started = time.perf_counter()
        baseline = self._sample_cost()

        series: dict[str, list[float]] = {name: [] for name in _SERIES}
        all_probes: list[np.ndarray] = []
        tick_probes: list[np.ndarray] = []
        found_total = 0
        query_total = 0

        def close_tick() -> None:
            merged = (np.concatenate(tick_probes) if tick_probes
                      else np.empty(0, dtype=np.int64))
            if merged.size:
                p50, p95, p99 = np.percentile(merged, (50, 95, 99))
                mean = float(merged.mean())
            else:
                p50 = p95 = p99 = mean = float("nan")
            series["p50"].append(float(p50))
            series["p95"].append(float(p95))
            series["p99"].append(float(p99))
            series["mean_probes"].append(mean)
            series["error_bound"].append(backend.error_bound())
            series["retrains"].append(float(backend.retrain_count))
            series["amplification"].append(
                self._sample_cost() / baseline)
            series["n_keys"].append(float(backend.n_keys))
            all_probes.extend(tick_probes)
            tick_probes.clear()

        # Process runs of same-kind ops, never across a tick boundary.
        # Only *stateless* reads are batched (a query run is one
        # lookup_batch call); state mutations apply strictly one op at
        # a time, so the replay is invariant under batching and tick
        # size by construction — a backend's batch-level rebuild check
        # must never decide retrain timing here.
        start = 0
        while start < n:
            tick_end = min(n, (start // self._tick_ops + 1)
                           * self._tick_ops)
            kind = kinds[start]
            stop = start + 1
            while stop < tick_end and kinds[stop] == kind:
                stop += 1
            run_keys = keys[start:stop]
            if kind == OP_QUERY:
                found, probes = backend.lookup_batch(run_keys)
                tick_probes.append(probes)
                found_total += int(found.sum())
                query_total += int(found.size)
            elif kind == OP_RANGE:
                probes = np.asarray(
                    [backend.range_scan(int(lo), int(hi))
                     for lo, hi in zip(run_keys, aux[start:stop])],
                    dtype=np.int64)
                tick_probes.append(probes)
            elif kind in (OP_INSERT, OP_POISON):
                for key in run_keys:
                    backend.insert_batch(key[np.newaxis])
            elif kind == OP_DELETE:
                for key in run_keys:
                    backend.delete_batch(key[np.newaxis])
            elif kind == OP_MODIFY:
                for key, new in zip(run_keys, aux[start:stop]):
                    backend.delete_batch(key[np.newaxis])
                    backend.insert_batch(new[np.newaxis])
            else:  # pragma: no cover - trace generator never emits it
                raise ValueError(f"unknown op kind: {kind}")
            start = stop
            if start == tick_end:
                close_tick()
        if tick_probes:  # pragma: no cover - tick math closes exactly
            close_tick()

        probes_flat = (np.concatenate(all_probes) if all_probes
                       else np.empty(0, dtype=np.int64))
        if probes_flat.size:
            p50, p95, p99 = (float(v) for v in
                             np.percentile(probes_flat, (50, 95, 99)))
            mean = float(probes_flat.mean())
        else:
            p50 = p95 = p99 = mean = float("nan")
        amplification = (series["amplification"][-1]
                         if series["amplification"] else 1.0)
        error_bounds = np.asarray(series["error_bound"])
        return ServingReport(
            backend=backend.name,
            spec_digest=trace.spec.digest,
            n_ops=n,
            tick_ops=self._tick_ops,
            series={name: np.asarray(values, dtype=np.float64)
                    for name, values in series.items()},
            p50=p50, p95=p95, p99=p99,
            mean_probes=mean,
            total_probes=int(probes_flat.sum()),
            found_fraction=(found_total / query_total if query_total
                            else 0.0),
            retrains=int(backend.retrain_count),
            final_amplification=float(amplification),
            max_error_bound=(float(error_bounds.max())
                             if error_bounds.size else 0.0),
            final_n_keys=int(backend.n_keys),
            ops_by_kind=trace.counts(),
            wall_seconds=time.perf_counter() - started)
