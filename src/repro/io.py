"""Persistence for keysets and attack results.

Reproduction pipelines want three things on disk: the exact keysets an
experiment used, the poisoning sets an attack produced, and the
summary numbers a run reported.  Keysets and key arrays go to ``.npz``
(lossless int64); result summaries go to JSON so EXPERIMENTS.md rows
and external plotting tools can consume them without importing this
library.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .core.greedy import GreedyResult
from .core.rmi_attack import RMIAttackResult
from .data.keyset import Domain, KeySet

__all__ = [
    "save_keyset",
    "load_keyset",
    "save_arrays",
    "load_arrays",
    "npz_array_names",
    "greedy_result_to_dict",
    "rmi_result_to_dict",
    "json_float",
    "parse_json_float",
    "save_json",
    "load_json",
]


def save_keyset(keyset: KeySet, path: str | Path) -> None:
    """Write a keyset (keys + domain) to a ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        keys=keyset.keys,
        domain=np.asarray([keyset.domain.lo, keyset.domain.hi],
                          dtype=np.int64))


def load_keyset(path: str | Path) -> KeySet:
    """Read a keyset written by :func:`save_keyset`."""
    with np.load(Path(path)) as archive:
        keys = archive["keys"]
        lo, hi = archive["domain"].tolist()
    return KeySet(keys, Domain(int(lo), int(hi)))


def save_arrays(path: str | Path, **arrays: np.ndarray) -> None:
    """Write named numpy arrays to a ``.npz`` file (lossless).

    Used by the runtime's checkpoint store for optional per-cell
    artifacts (poison sets, loss trajectories) next to the JSON
    summary.
    """
    if not arrays:
        raise ValueError("save_arrays needs at least one named array")
    path = Path(path)
    if path.suffix != ".npz":
        # Mirror savez's own name normalisation so callers find the
        # file where numpy would have put it.
        path = path.with_name(path.name + ".npz")

    def write(tmp: Path) -> None:
        # A file object, not a name: savez appends ".npz" to names
        # that lack it, which would dodge the atomic rename.
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)

    _atomic_replace(path, write)


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Read every array written by :func:`save_arrays`."""
    with np.load(Path(path)) as archive:
        return {name: archive[name] for name in archive.files}


def npz_array_names(path: str | Path) -> list[str]:
    """Names of the arrays in a ``.npz``, without loading their data.

    Used to build artifact manifests over whole checkpoint
    directories, where decompressing every poison set just to list it
    would be wasteful.
    """
    with np.load(Path(path)) as archive:
        return sorted(archive.files)


def greedy_result_to_dict(result: GreedyResult) -> dict[str, Any]:
    """JSON-safe summary of an Algorithm 1 run."""
    return {
        "attack": "greedy-multi-point",
        "n_injected": result.n_injected,
        "poison_keys": result.poison_keys.tolist(),
        "loss_before": result.loss_before,
        "loss_after": result.loss_after,
        "ratio_loss": json_float(result.ratio_loss),
        "exhausted": result.exhausted,
        "loss_trajectory": result.losses.tolist(),
    }


def rmi_result_to_dict(result: RMIAttackResult) -> dict[str, Any]:
    """JSON-safe summary of an Algorithm 2 run."""
    return {
        "attack": "greedy-rmi",
        "n_models": len(result.reports),
        "threshold": result.threshold,
        "exchanges": result.exchanges,
        "total_injected": result.total_injected,
        "poison_keys": result.poison_keys.tolist(),
        "rmi_loss_before": result.rmi_loss_before,
        "rmi_loss_after": result.rmi_loss_after,
        "rmi_ratio_loss": json_float(result.rmi_ratio_loss),
        "per_model": [
            {
                "model": r.model_index,
                "n_keys": r.n_keys,
                "budget": r.budget,
                "n_injected": r.n_injected,
                "loss_before": r.loss_before,
                "loss_after": r.loss_after,
                "ratio_loss": json_float(r.ratio_loss),
            }
            for r in result.reports
        ],
    }


def json_float(value: float) -> float | str:
    """JSON has no inf/nan literals; stringify them explicitly."""
    if value != value:
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def parse_json_float(value: float | str) -> float:
    """Inverse of :func:`json_float` (``float`` parses the sentinels)."""
    return float(value)


def _atomic_replace(path: Path, write: "Callable[[Path], None]") -> None:
    """Publish a file under ``path`` only after a complete write.

    The temp name embeds pid + a random suffix so concurrent writers
    of the same destination (two sweeps sharing a checkpoint dir)
    never touch each other's half-written files; last replace wins.
    """
    suffix = f".{os.getpid()}.{uuid.uuid4().hex[:8]}{path.suffix}.tmp"
    tmp = path.with_name(path.name + suffix)
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_json(payload: dict[str, Any], path: str | Path) -> None:
    """Pretty-print a result dictionary to disk, atomically.

    A killed (or racing) writer can never leave a truncated JSON file
    under the final name — the invariant the checkpoint store's
    resume logic relies on.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    _atomic_replace(Path(path), lambda tmp: tmp.write_text(text))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a result dictionary back."""
    return json.loads(Path(path).read_text())
