"""The sweep engine: fan cells out, checkpoint, aggregate in order.

Determinism contract
--------------------
``SweepEngine.run`` returns one JSON-safe result dict per cell, **in
plan order**, regardless of how many workers computed them or which
finished first.  Cell runners derive all randomness from the cell's
parameters alone.  Together those two rules make ``jobs=1``,
``jobs=N``, and any resumed combination produce identical aggregates.

Execution model
---------------
* ``jobs=1`` runs cells inline — no pool, no pickling, the exact code
  path a debugger wants.
* ``jobs>1`` submits cells to a ``ProcessPoolExecutor``.  The runner
  must be a module-level callable (picklable) and cells carry only
  plain scalars, so both ``fork`` and ``spawn`` start methods work.
* Checkpoints are written by the parent as results arrive — a single
  writer, so no file races — and a run killed between cells loses at
  most the cells in flight.  ``resume=True`` reloads every completed
  cell from the store before any work is scheduled.

A worker exception cancels the remaining queue and re-raises in the
parent; cells that completed before the failure keep their
checkpoints, so the fix-and-resume loop is cheap.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .cell import Cell
from .checkpoint import CheckpointStore

__all__ = ["SweepEngine", "SweepStats", "CellRunner"]

CellRunner = Callable[[Cell], dict[str, Any]]


@dataclass(frozen=True)
class SweepStats:
    """Accounting of one :meth:`SweepEngine.run` call."""

    total: int      # cells in the plan
    reused: int     # satisfied from the checkpoint store
    computed: int   # actually executed this run
    jobs: int       # worker processes used (1 = inline)


class SweepEngine:
    """Execute a plan of cells with a runner, optionally in parallel.

    Parameters
    ----------
    runner:
        Module-level callable ``Cell -> dict`` (JSON-safe values only,
        so results checkpoint and aggregate identically either way).
    jobs:
        Worker processes; ``1`` (default) runs inline.
    checkpoint:
        Optional store; completed cells are written to it as they
        finish.
    resume:
        Reuse completed cells from ``checkpoint`` instead of
        recomputing them.  Safe even across edited grids: cells are
        content-addressed, so only exact parameter matches are reused.
    """

    def __init__(self, runner: CellRunner, jobs: int = 1,
                 checkpoint: CheckpointStore | None = None,
                 resume: bool = False):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint store")
        self._runner = runner
        self._jobs = jobs
        self._checkpoint = checkpoint
        self._resume = resume
        self.last_stats: SweepStats | None = None

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[Cell]) -> list[dict[str, Any]]:
        """Execute the plan; results align index-for-index with ``cells``."""
        results: dict[int, dict[str, Any]] = {}

        # Identical cells (same digest) are computed once and shared.
        first_index: dict[str, int] = {}
        duplicates: dict[int, int] = {}
        todo: list[int] = []
        for index, cell in enumerate(cells):
            if cell.digest in first_index:
                duplicates[index] = first_index[cell.digest]
                continue
            first_index[cell.digest] = index
            todo.append(index)

        reused = 0
        if self._resume and self._checkpoint is not None:
            done = self._checkpoint.completed(cells[i] for i in todo)
            remaining = []
            for index in todo:
                if cells[index] in done:
                    results[index] = done[cells[index]]
                    reused += 1
                else:
                    remaining.append(index)
            todo = remaining

        if self._jobs == 1 or len(todo) <= 1:
            for index in todo:
                results[index] = self._finish(cells[index],
                                              self._runner(cells[index]))
            used_jobs = 1
        else:
            used_jobs = min(self._jobs, len(todo))
            with ProcessPoolExecutor(max_workers=used_jobs) as pool:
                futures = {pool.submit(self._runner, cells[index]): index
                           for index in todo}
                try:
                    # Checkpoint each cell the moment it completes, so
                    # a run killed mid-sweep keeps everything finished.
                    for future in as_completed(futures):
                        index = futures[future]
                        results[index] = self._finish(cells[index],
                                                      future.result())
                except BaseException:
                    for f in futures:
                        f.cancel()
                    raise

        for index, source in duplicates.items():
            results[index] = results[source]

        self.last_stats = SweepStats(
            total=len(cells), reused=reused,
            computed=len(cells) - reused - len(duplicates), jobs=used_jobs)
        return [results[index] for index in range(len(cells))]

    # ------------------------------------------------------------------
    def _finish(self, cell: Cell, result: dict[str, Any]) -> dict[str, Any]:
        """Checkpoint one freshly computed cell."""
        if self._checkpoint is not None:
            self._checkpoint.save_cell(cell, result)
        return result
