"""The sweep engine: fan cells out, checkpoint, aggregate in order.

Determinism contract
--------------------
``SweepEngine.run`` returns one JSON-safe result dict per cell, **in
plan order**, regardless of how many workers computed them or which
finished first.  Cell runners derive all randomness from the cell's
parameters alone.  Together those two rules make ``jobs=1``,
``jobs=N``, either executor backend, and any resumed combination
produce identical aggregates.

Execution model
---------------
* ``jobs=1`` runs cells inline — no pool, no pickling, the exact code
  path a debugger wants.
* ``jobs>1`` submits cells to a pool chosen by ``executor``:
  ``"process"`` (default) uses a ``ProcessPoolExecutor`` — the runner
  must be a module-level callable (picklable) and cells carry only
  plain scalars, so both ``fork`` and ``spawn`` start methods work.
  ``"thread"`` uses a ``ThreadPoolExecutor``, which skips pickling
  entirely and suits runners that spend their time in numpy (the GIL
  is released inside BLAS/ufunc kernels); the runner must then be
  thread-safe, which every cell runner in this repository is because
  cells share no mutable state.
* Checkpoints are written by the parent as results arrive — a single
  writer, so no file races — and a run killed between cells loses at
  most the cells in flight.  ``resume=True`` reloads every completed
  cell from the store before any work is scheduled.

Artifact capture
----------------
A runner may return a :class:`CellOutput` instead of a plain dict to
attach named numpy arrays (poison sets, per-model ratio vectors) to
the cell.  The engine persists them as a sibling ``.npz`` through the
checkpoint store and re-exposes them on resume, so aggregation code
can treat freshly computed and reloaded cells identically via
:meth:`SweepEngine.run_outputs`.

A worker exception cancels the remaining queue and re-raises in the
parent; cells that completed before the failure keep their
checkpoints, so the fix-and-resume loop is cheap.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..observe.metrics import MetricsRegistry
from ..observe.metrics import active as observe_active
from .cell import Cell
from .checkpoint import CheckpointStore

__all__ = ["CellOutput", "SweepEngine", "SweepStats", "SweepProgress",
           "CellRunner", "EXECUTORS"]

#: Pool backends selectable per engine (and per CLI ``--executor``).
EXECUTORS = {
    "process": ProcessPoolExecutor,
    "thread": ThreadPoolExecutor,
}


@dataclass(frozen=True)
class CellOutput:
    """What one cell produced: a JSON-safe summary plus array artifacts.

    ``result`` must hold JSON-safe values only (it is checkpointed as
    JSON and compared across executors); ``arrays`` may hold arbitrary
    named numpy arrays, persisted losslessly as ``.npz``.
    """

    result: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


CellRunner = Callable[[Cell], "dict[str, Any] | CellOutput"]


def _coerce(value: Mapping[str, Any] | CellOutput) -> CellOutput:
    """Accept the legacy plain-dict runner return value."""
    if isinstance(value, CellOutput):
        return value
    return CellOutput(result=dict(value))


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of a running sweep (opt-in callback payload).

    ``done`` counts plan cells whose results are settled so far
    (reused + computed; duplicate cells settle with their source, so
    the final tick's ``done`` equals ``total``).  ``eta_seconds`` is a
    plain elapsed-per-computed-cell extrapolation over the remaining
    unique work — ``None`` until the first cell of this run finishes,
    and therefore ``None`` (never ``inf`` or negative) on the restore
    tick of a resumed run whose remaining cells were all checkpoint
    hits.  Wall-clock only ever flows *out* through this hook; nothing
    it carries feeds back into results, so determinism is untouched.
    """

    total: int
    done: int
    reused: int
    computed: int
    cell: Cell | None          # the cell that just finished, if one
    seconds_elapsed: float
    eta_seconds: float | None


ProgressCallback = Callable[[SweepProgress], None]


@dataclass(frozen=True)
class SweepStats:
    """Accounting of one :meth:`SweepEngine.run` call."""

    total: int      # cells in the plan
    reused: int     # satisfied from the checkpoint store
    computed: int   # actually executed this run
    jobs: int       # workers used (1 = inline)
    # Backend that actually ran the cells: "process"/"thread" when a
    # pool was constructed, "inline" when the jobs==1 (or <=1 cell)
    # path executed without one.
    executor: str = "inline"


class SweepEngine:
    """Execute a plan of cells with a runner, optionally in parallel.

    Parameters
    ----------
    runner:
        Module-level callable ``Cell -> dict | CellOutput`` (JSON-safe
        result values only, so results checkpoint and aggregate
        identically either way).
    jobs:
        Workers; ``1`` (default) runs inline.
    checkpoint:
        Optional store; completed cells (and their array artifacts)
        are written to it as they finish.
    resume:
        Reuse completed cells from ``checkpoint`` instead of
        recomputing them.  Safe even across edited grids: cells are
        content-addressed, so only exact parameter matches are reused.
    executor:
        ``"process"`` (default) or ``"thread"``; ignored at ``jobs=1``.
        Results are identical for both backends by construction.
    progress:
        Optional callback receiving a :class:`SweepProgress` tick
        after the resume batch restores and after every computed cell
        — the hook long full-profile and workload runs use for an
        ETA readout.  Exceptions it raises propagate (it runs in the
        parent, never in a worker).
    """

    def __init__(self, runner: CellRunner, jobs: int = 1,
                 checkpoint: CheckpointStore | None = None,
                 resume: bool = False, executor: str = "process",
                 progress: "ProgressCallback | None" = None,
                 metrics: "MetricsRegistry | None" = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint store")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {sorted(EXECUTORS)}, "
                f"got {executor!r}")
        self._runner = runner
        self._jobs = jobs
        self._checkpoint = checkpoint
        self._resume = resume
        self._executor = executor
        self._progress = progress
        # Opt-in observability: wall-clock flows only into the
        # registry (like SweepStats, never into results), so the
        # determinism contract above is untouched.
        self._metrics = (metrics if metrics is not None
                         else observe_active())
        self.last_stats: SweepStats | None = None

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[Cell]) -> list[dict[str, Any]]:
        """Execute the plan; results align index-for-index with ``cells``."""
        return [output.result for output in self.run_outputs(cells)]

    def run_outputs(self, cells: Sequence[Cell]) -> list[CellOutput]:
        """Like :meth:`run`, but keep each cell's array artifacts.

        Reused cells get their arrays back from the checkpoint store,
        so callers see the same :class:`CellOutput` shape whether the
        cell was computed this run or resumed from disk.
        """
        outputs: dict[int, CellOutput] = {}
        metrics = self._metrics
        started = time.monotonic()

        # Identical cells (same digest) are computed once and shared.
        first_index: dict[str, int] = {}
        duplicates: dict[int, int] = {}
        todo: list[int] = []
        for index, cell in enumerate(cells):
            if cell.digest in first_index:
                duplicates[index] = first_index[cell.digest]
                continue
            first_index[cell.digest] = index
            todo.append(index)

        computed_so_far = 0

        def tick(cell: Cell | None, remaining: int) -> None:
            """Emit one progress event (no-op without a callback)."""
            if self._progress is None:
                return
            settled = len(outputs) + sum(
                1 for source in duplicates.values() if source in outputs)
            elapsed = time.monotonic() - started
            # The ETA contract: a finite non-negative extrapolation or
            # None, never inf/NaN/negative.  Extrapolation needs at
            # least one cell computed *this run* — on a resume whose
            # remaining cells were all checkpoint hits there is
            # nothing to extrapolate from, so the ETA stays None.
            eta = None
            if computed_so_far > 0 and remaining >= 0:
                eta = remaining * elapsed / computed_so_far
                if not (math.isfinite(eta) and eta >= 0.0):
                    eta = None
            self._progress(SweepProgress(
                total=len(cells), done=settled, reused=reused,
                computed=computed_so_far, cell=cell,
                seconds_elapsed=elapsed, eta_seconds=eta))

        reused = 0
        if self._resume and self._checkpoint is not None:
            done = self._checkpoint.completed_outputs(
                cells[i] for i in todo)
            remaining = []
            for index in todo:
                if cells[index] in done:
                    result, arrays = done[cells[index]]
                    outputs[index] = CellOutput(result=result,
                                                arrays=arrays)
                    reused += 1
                else:
                    remaining.append(index)
            todo = remaining
            if reused:
                tick(cell=None, remaining=len(todo))

        if self._jobs == 1 or len(todo) <= 1:
            for position, index in enumerate(todo):
                cell_started = (time.perf_counter()
                                if metrics is not None else 0.0)
                outputs[index] = self._finish(
                    cells[index], _coerce(self._runner(cells[index])))
                if metrics is not None:
                    metrics.observe("engine.cell",
                                    time.perf_counter() - cell_started)
                computed_so_far += 1
                tick(cells[index], remaining=len(todo) - position - 1)
            used_jobs = 1
            used_executor = "inline"
        else:
            used_jobs = min(self._jobs, len(todo))
            used_executor = self._executor
            pool_cls = EXECUTORS[self._executor]
            with pool_cls(max_workers=used_jobs) as pool:
                futures = {pool.submit(self._runner, cells[index]): index
                           for index in todo}
                try:
                    # Checkpoint each cell the moment it completes, so
                    # a run killed mid-sweep keeps everything finished.
                    for future in as_completed(futures):
                        index = futures[future]
                        outputs[index] = self._finish(
                            cells[index], _coerce(future.result()))
                        computed_so_far += 1
                        tick(cells[index],
                             remaining=len(todo) - computed_so_far)
                except BaseException:
                    for f in futures:
                        f.cancel()
                    raise

        for index, source in duplicates.items():
            outputs[index] = outputs[source]

        self.last_stats = SweepStats(
            total=len(cells), reused=reused,
            computed=len(cells) - reused - len(duplicates),
            jobs=used_jobs, executor=used_executor)
        if metrics is not None:
            metrics.observe("engine.run", time.monotonic() - started)
            metrics.inc("engine.cells_total", self.last_stats.total)
            metrics.inc("engine.cells_reused", self.last_stats.reused)
            metrics.inc("engine.cells_computed",
                        self.last_stats.computed)
        return [outputs[index] for index in range(len(cells))]

    # ------------------------------------------------------------------
    def _finish(self, cell: Cell, output: CellOutput) -> CellOutput:
        """Checkpoint one freshly computed cell (summary + artifacts)."""
        if self._checkpoint is not None:
            self._checkpoint.save_cell(cell, output.result,
                                       arrays=output.arrays or None)
        return output
