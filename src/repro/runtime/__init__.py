"""Parallel experiment runtime: cells, checkpoints, and the engine.

Every sweep in this reproduction is embarrassingly parallel: a grid of
(distribution x n x poisoning-rate x seed) cells whose results are
aggregated only at the very end.  This package factors that shape out
of the individual experiment modules:

* :mod:`repro.runtime.cell` — a :class:`Cell` is one hashable, seeded
  unit of work (an experiment name plus canonical JSON parameters).
* :mod:`repro.runtime.checkpoint` — a content-addressed on-disk store
  of completed cells, so interrupted sweeps resume instead of
  restarting.
* :mod:`repro.runtime.engine` — the :class:`SweepEngine` fans cells
  out over a process pool and hands the results back in plan order,
  which makes ``jobs=1`` and ``jobs=N`` bit-identical by construction.

Experiment modules keep their public ``run(config) -> result`` shape;
they gain ``jobs`` / ``checkpoint_dir`` / ``resume`` keywords that are
forwarded here.
"""

from .cell import Cell, stable_seed_words, stable_text_hash
from .checkpoint import CheckpointStore
from .engine import (
    EXECUTORS,
    CellOutput,
    SweepEngine,
    SweepProgress,
    SweepStats,
)

__all__ = [
    "Cell",
    "stable_text_hash",
    "stable_seed_words",
    "CheckpointStore",
    "CellOutput",
    "EXECUTORS",
    "SweepEngine",
    "SweepProgress",
    "SweepStats",
]
