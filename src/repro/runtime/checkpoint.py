"""Content-addressed on-disk checkpoints for sweep cells.

Layout under one root directory::

    <root>/
        manifest.json           # sweep description (informational)
        cells/
            <experiment>-<digest>.json   # {"schema", "cell", "result"}
            <experiment>-<digest>.npz    # optional array artifacts

Cell files are keyed by the cell's content digest, so a checkpoint
directory may be shared across runs and even across grids: a cell
whose parameters changed hashes to a new name and is recomputed, while
untouched cells are reused verbatim.  Loads are defensive — a missing,
truncated, or mismatching file simply reports the cell as not done,
which costs a recompute instead of a wrong result.

All JSON goes through :mod:`repro.io`, whose :func:`repro.io.save_json`
is atomic; a sweep killed mid-write never corrupts its store.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from .. import io
from .cell import Cell

__all__ = ["CheckpointStore", "CELL_SCHEMA", "MANIFEST_SCHEMA"]

CELL_SCHEMA = "repro.runtime.cell/v1"
MANIFEST_SCHEMA = "repro.runtime.manifest/v1"


class CheckpointStore:
    """A directory of completed cells, safe to resume from."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def cell_path(self, cell: Cell) -> Path:
        """JSON file this cell checkpoints to."""
        return self.cells_dir / f"{cell.experiment}-{cell.digest}.json"

    def arrays_path(self, cell: Cell) -> Path:
        """Sibling ``.npz`` for the cell's optional array artifacts."""
        return self.cell_path(cell).with_suffix(".npz")

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def save_cell(self, cell: Cell, result: Mapping[str, Any],
                  arrays: Mapping[str, np.ndarray] | None = None) -> None:
        """Persist one completed cell (JSON summary + optional arrays).

        When artifacts are attached, the ``.npz`` is written *before*
        the JSON summary and the summary records which array names it
        promised (the artifact manifest).  A crash between the two
        writes therefore leaves at most an orphaned ``.npz``, never a
        summary that points at missing arrays.
        """
        payload = {
            "schema": CELL_SCHEMA,
            "cell": cell.spec(),
            "result": dict(result),
        }
        if arrays:
            io.save_arrays(self.arrays_path(cell), **arrays)
            payload["arrays"] = sorted(arrays)
        io.save_json(payload, self.cell_path(cell))

    def load_cell(self, cell: Cell) -> dict[str, Any] | None:
        """The stored result for ``cell``, or ``None`` if not done.

        Unreadable or mismatching files are treated as absent; resume
        then recomputes the cell rather than trusting a stale record.
        A cell whose summary promises array artifacts that cannot be
        read back (missing, truncated, or renamed entries in the
        ``.npz``) counts as not done for the same reason.
        """
        output = self.load_cell_output(cell)
        return None if output is None else output[0]

    def load_cell_output(
            self, cell: Cell,
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]] | None:
        """Result *and* verified artifacts, or ``None`` if incomplete."""
        path = self.cell_path(cell)
        if not path.exists():
            return None
        try:
            payload = io.load_json(path)
        except (ValueError, OSError):
            # ValueError covers both malformed JSON and non-UTF-8 bytes.
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CELL_SCHEMA:
            return None
        if not cell.matches(payload.get("cell", {})):
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            return None
        declared = payload.get("arrays", [])
        if not isinstance(declared, list):
            return None
        arrays = self.load_arrays(cell) if declared else {}
        if not set(declared) <= set(arrays):
            # The summary promised artifacts the .npz cannot deliver —
            # treat the whole cell as missing so resume recomputes it.
            return None
        return result, arrays

    def load_arrays(self, cell: Cell) -> dict[str, np.ndarray]:
        """Array artifacts saved next to the cell (empty dict if none).

        Defensive like :meth:`load_cell`: a truncated or foreign
        ``.npz`` reads as "no artifacts" rather than crashing resume.
        """
        path = self.arrays_path(cell)
        if not path.exists():
            return {}
        try:
            return io.load_arrays(path)
        except (ValueError, OSError, zipfile.BadZipFile):
            return {}

    def completed(self, cells: Iterable[Cell]) -> dict[Cell, dict[str, Any]]:
        """Subset of ``cells`` already checkpointed, with their results."""
        return {cell: result
                for cell, (result, _) in
                self.completed_outputs(cells).items()}

    def completed_outputs(
            self, cells: Iterable[Cell],
    ) -> dict[Cell, tuple[dict[str, Any], dict[str, np.ndarray]]]:
        """Like :meth:`completed`, but carrying each cell's artifacts."""
        done = {}
        for cell in cells:
            output = self.load_cell_output(cell)
            if output is not None:
                done[cell] = output
        return done

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, meta: Mapping[str, Any]) -> None:
        """Describe the sweep this directory belongs to (for humans)."""
        payload = {"schema": MANIFEST_SCHEMA, **dict(meta)}
        io.save_json(payload, self.root / "manifest.json")

    def read_manifest(self) -> dict[str, Any] | None:
        """The manifest, or ``None`` when absent/unreadable."""
        path = self.root / "manifest.json"
        if not path.exists():
            return None
        try:
            payload = io.load_json(path)
        except (ValueError, OSError):
            return None
        return payload if isinstance(payload, dict) else None
