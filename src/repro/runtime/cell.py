"""Cells: the hashable atomic units of an experiment sweep.

A :class:`Cell` names one experiment plus the exact parameters of one
grid point.  Two properties make the runtime work:

* **Canonical** — parameters are JSON scalars stored in sorted key
  order, so logically equal cells compare and hash equal no matter how
  they were constructed.
* **Content-addressed** — :attr:`Cell.digest` is a SHA-256 prefix of
  the canonical JSON spec.  Checkpoint files are keyed by it, which
  makes resume safe by construction: a cell from a different grid (or
  an edited parameter) can never be mistaken for a completed one.

Seeding: :meth:`Cell.rng` derives an independent, deterministic numpy
stream per cell from ``seed_root + digest`` — order of execution and
number of workers cannot leak into the randomness.  Experiments that
predate the runtime instead keep their historical seed derivations
inside their cell runners, so their results stay bit-identical to the
legacy serial path.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["Cell", "stable_text_hash", "stable_seed_words"]

_DIGEST_HEX = 16  # 64-bit prefix; ample for any realistic grid size


def stable_text_hash(text: str) -> int:
    """A small non-negative hash of a string, stable across processes.

    Python's builtin ``hash(str)`` is salted per interpreter, which
    silently breaks reproducibility the moment work spans more than
    one process (workers, resumed runs).  CRC-32 is stable everywhere.
    """
    return zlib.crc32(text.encode("utf-8"))


def stable_seed_words(*parts: int | str) -> list[int]:
    """Mixed int/str seed parts as a numpy seed list, process-stable.

    Strings go through :func:`stable_text_hash` folded into the
    non-negative 31-bit range ``SeedSequence`` expects of its entropy
    words, so a seed such as ``(seed, n_keys, "osm-latitudes")``
    derives the same stream in every worker process and every resumed
    run.
    """
    return [stable_text_hash(part) % 2**31 if isinstance(part, str)
            else int(part)
            for part in parts]


def _canonical_scalar(key: str, value: Any) -> Any:
    """Coerce one parameter to a canonical JSON scalar or fail loudly."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        out = float(value)
        if out != out or out in (float("inf"), float("-inf")):
            raise ValueError(
                f"cell parameter {key!r} must be finite, got {out}")
        return out
    if isinstance(value, str):
        return value
    raise TypeError(
        f"cell parameter {key!r} must be a JSON scalar, "
        f"got {type(value).__name__}")


@dataclass(frozen=True)
class Cell:
    """One grid point of a sweep: experiment name + canonical params."""

    experiment: str
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, experiment: str, **params: Any) -> "Cell":
        """Build a cell, canonicalising parameters (sorted, JSON scalars)."""
        items = tuple(sorted(
            (name, _canonical_scalar(name, value))
            for name, value in params.items()))
        return cls(experiment=experiment, params=items)

    @property
    def params_dict(self) -> dict[str, Any]:
        """Parameters as a plain dict (fresh copy)."""
        return dict(self.params)

    def spec(self) -> dict[str, Any]:
        """JSON-safe description of the cell (what the digest covers)."""
        return {"experiment": self.experiment, "params": self.params_dict}

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace games."""
        return json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Hex content hash; the checkpoint filename key."""
        raw = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return raw.hexdigest()[:_DIGEST_HEX]

    def seed(self, seed_root: int) -> int:
        """Deterministic per-cell seed: ``seed_root + int(digest)``."""
        return seed_root + int(self.digest, 16)

    def rng(self, seed_root: int) -> np.random.Generator:
        """Independent numpy stream for this cell under ``seed_root``."""
        return np.random.default_rng(self.seed(seed_root))

    def matches(self, spec: Mapping[str, Any]) -> bool:
        """Whether a stored spec describes this exact cell."""
        return spec == self.spec()
