"""Sorted in-memory record store with last-mile local search.

The learned-index substrate of Section III-A: key-record pairs live in
a dense, sorted, in-memory array (fixed-length records, logical paging
over a contiguous region).  A learned model predicts a *position*; the
store then performs the "last mile" search around that prediction to
land on the exact slot.

Two local-search strategies are provided:

* :meth:`SortedStore.search_window` — binary search within a known
  error window ``[pred - max_err, pred + max_err]``, the strategy the
  original LIS paper uses when per-model error bounds are stored;
* :meth:`SortedStore.search_exponential` — exponential (galloping)
  search outward from the prediction when no bound is known.

Both count *probed cells*, the implementation-independent cost proxy
used by :mod:`repro.index.cost` (the paper's nanosecond benchmark is
not public, see Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .batch import BatchProbeResult, windowed_search_batch

__all__ = ["ProbeResult", "RangeResult", "SortedStore"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a last-mile search.

    Attributes
    ----------
    position:
        0-based slot of the key, or ``-1`` when absent.
    probes:
        Number of array cells touched, the lookup cost proxy.
    found:
        Whether the key is stored.
    """

    position: int
    probes: int

    @property
    def found(self) -> bool:
        return self.position >= 0


class SortedStore:
    """A dense sorted array of unique int64 keys (records implied).

    Records are fixed length, so the rank of a key *is* its memory
    location up to a constant factor — exactly the reduction the
    learned index exploits.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: np.ndarray):
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            raise ValueError("store must hold at least one key")
        if np.any(np.diff(arr) <= 0):
            raise ValueError("store keys must be strictly increasing")
        self._keys = arr
        self._keys.setflags(write=False)

    @property
    def keys(self) -> np.ndarray:
        """The stored keys (read-only view)."""
        return self._keys

    def __len__(self) -> int:
        return int(self._keys.size)

    def key_at(self, position: int) -> int:
        """Key stored at a 0-based slot."""
        return int(self._keys[position])

    def range_scan(self, lo: int, hi: int) -> "RangeResult":
        """All stored keys in ``[lo, hi]`` as a slice, via two
        binary searches (the baseline a learned range index must beat
        on the *first* endpoint; the scan itself is sequential)."""
        n = self._keys.size
        start = int(np.searchsorted(self._keys, lo, side="left"))
        stop = int(np.searchsorted(self._keys, hi, side="right"))
        # Two binary searches at ~log2(n) probed cells each.
        probes = 2 * max(1, int(np.ceil(np.log2(max(n, 2)))))
        return RangeResult(start=start, stop=stop, probes=probes)

    # ------------------------------------------------------------------
    # Last-mile search strategies
    # ------------------------------------------------------------------
    def search_window(self, key: int, predicted: int,
                      max_error: int) -> ProbeResult:
        """Binary search inside ``[predicted - e, predicted + e]``.

        ``max_error`` is the model's worst-case position error for the
        keys it serves; larger post-poisoning errors directly inflate
        the probe count (log of the window plus verification).
        """
        n = self._keys.size
        lo = max(0, predicted - max_error)
        hi = min(n - 1, predicted + max_error)
        probes = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            probes += 1
            stored = self._keys[mid]
            if stored == key:
                return ProbeResult(int(mid), probes)
            if stored < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return ProbeResult(-1, probes)

    def search_window_batch(self, keys: np.ndarray,
                            predicted: np.ndarray,
                            max_error: np.ndarray | int,
                            ) -> BatchProbeResult:
        """Vectorized :meth:`search_window` over a batch of queries.

        ``predicted`` aligns with ``keys``; ``max_error`` may be a
        scalar or per-query array.  Positions and probe counts are
        bit-identical to running :meth:`search_window` per element —
        the batched form only removes interpreter overhead, never
        changes the measured cost.
        """
        n = self._keys.size
        keys = np.asarray(keys, dtype=np.int64)
        predicted = np.asarray(predicted, dtype=np.int64)
        err = np.broadcast_to(np.asarray(max_error, dtype=np.int64),
                              keys.shape)
        lo = np.maximum(0, predicted - err)
        hi = np.minimum(n - 1, predicted + err)
        return windowed_search_batch(self._keys, keys, lo, hi)

    def search_exponential(self, key: int, predicted: int) -> ProbeResult:
        """Galloping search outward from the predicted position.

        Doubles the radius until the key is bracketed, then binary
        searches the bracket.  Cost grows with the *logarithm of the
        prediction error*, so it degrades gracefully — but still
        measurably — under poisoning.
        """
        n = self._keys.size
        pos = min(max(predicted, 0), n - 1)
        probes = 1
        anchor = self._keys[pos]
        if anchor == key:
            return ProbeResult(pos, probes)

        radius = 1
        if anchor < key:
            lo = pos + 1
            hi = pos
            while hi < n - 1:
                hi = min(pos + radius, n - 1)
                probes += 1
                if self._keys[hi] >= key:
                    break
                lo = hi + 1
                radius *= 2
        else:
            hi = pos - 1
            lo = pos
            while lo > 0:
                lo = max(pos - radius, 0)
                probes += 1
                if self._keys[lo] <= key:
                    break
                hi = lo - 1
                radius *= 2

        while lo <= hi:
            mid = (lo + hi) // 2
            probes += 1
            stored = self._keys[mid]
            if stored == key:
                return ProbeResult(int(mid), probes)
            if stored < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return ProbeResult(-1, probes)


@dataclass(frozen=True)
class RangeResult:
    """Outcome of a range scan: slice bounds plus cost."""

    start: int
    stop: int  # exclusive
    probes: int

    @property
    def count(self) -> int:
        """Number of keys in the range."""
        return max(self.stop - self.start, 0)
