"""Implementation-independent lookup-cost comparison.

The original LIS benchmark (nanoseconds, custom C++) is not public, so
the paper evaluates with the Ratio Loss.  As an end-to-end complement
this module compares a (possibly poisoned) learned index against the
B-Tree baseline on a shared axis: the number of *probed cells /
compared keys* per lookup, which tracks memory traffic — the dominant
cost for in-memory indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .btree import BTree
from .linear_index import LinearLearnedIndex
from .rmi import RecursiveModelIndex

__all__ = ["CostReport", "rmi_cost", "linear_index_cost", "btree_cost",
           "compare_costs"]


@dataclass(frozen=True)
class CostReport:
    """Mean lookup cost of one structure over a query batch."""

    structure: str
    mean_cost: float
    max_cost: float
    n_queries: int

    def row(self) -> str:
        """Formatted table row."""
        return (f"{self.structure:<24} mean={self.mean_cost:8.2f} "
                f"max={self.max_cost:8.0f} over {self.n_queries} lookups")


def _sample_queries(keys: np.ndarray, n_queries: int,
                    rng: np.random.Generator) -> np.ndarray:
    if n_queries >= keys.size:
        return keys
    return rng.choice(keys, size=n_queries, replace=False)


def rmi_cost(index: RecursiveModelIndex, queries: np.ndarray,
             label: str = "rmi") -> CostReport:
    """Probe-count cost of an RMI over the given stored-key queries."""
    probes = np.asarray([index.lookup(int(k)).probes for k in queries])
    return CostReport(label, float(probes.mean()), float(probes.max()),
                      int(queries.size))


def linear_index_cost(index: LinearLearnedIndex, queries: np.ndarray,
                      label: str = "linear-index") -> CostReport:
    """Probe-count cost of the single-model learned index."""
    probes = np.asarray([index.lookup(int(k)).probes for k in queries])
    return CostReport(label, float(probes.mean()), float(probes.max()),
                      int(queries.size))


def btree_cost(tree: BTree, queries: np.ndarray,
               label: str = "btree") -> CostReport:
    """Comparison-count cost of the B-Tree baseline."""
    comps = np.asarray([tree.search(int(k)).comparisons for k in queries])
    return CostReport(label, float(comps.mean()), float(comps.max()),
                      int(queries.size))


def compare_costs(stored_keys: np.ndarray, poisoned_keys: np.ndarray,
                  n_models: int, n_queries: int = 2000,
                  seed: int = 0) -> list[CostReport]:
    """Clean RMI vs poisoned RMI vs B-Tree on the same legitimate queries.

    ``poisoned_keys`` is the *full* poisoned key array (legitimate +
    injected); queries are drawn from the legitimate keys only, since
    the attacker's goal is to slow down everyone else's lookups.
    """
    rng = np.random.default_rng(seed)
    queries = _sample_queries(np.asarray(stored_keys, dtype=np.int64),
                              n_queries, rng)
    clean_rmi = RecursiveModelIndex.build_equal_size(stored_keys, n_models)
    dirty_rmi = RecursiveModelIndex.build_equal_size(poisoned_keys, n_models)
    tree = BTree.bulk_load(np.asarray(stored_keys, dtype=np.int64))
    return [
        rmi_cost(clean_rmi, queries, "rmi (clean)"),
        rmi_cost(dirty_rmi, queries, "rmi (poisoned)"),
        btree_cost(tree, queries, "btree (clean)"),
    ]
