"""Storage accounting for index structures.

The learned-index pitch (paper Sec. I) is two-sided: speed *and*
memory — "space efficiency from storing two parameters, therefore
allowing to store tens of thousands of linear regression models in
main memory".  The poisoning discussion (Sec. VI) then argues that
hardening the second stage with bigger models "negatively affects the
storage overhead".  To make both arguments quantitative this module
prices each structure in bytes:

* an RMI stores, per second-stage model, slope + intercept (and the
  error-window pair the original design keeps for bounded last-mile
  search), plus its root;
* a B-Tree stores keys and child pointers per node;
* a polynomial second stage stores ``degree + 1`` coefficients per
  model plus normalisation.

The numbers use the in-memory widths of the actual implementation
(8-byte floats/ints/pointers), so they are honest for *this* system
and proportional for any other.
"""

from __future__ import annotations

from dataclasses import dataclass

from .btree import BTree
from .rmi import RecursiveModelIndex

__all__ = ["StorageReport", "rmi_storage", "btree_storage",
           "polynomial_stage_storage"]

_FLOAT_BYTES = 8
_INT_BYTES = 8
_POINTER_BYTES = 8


@dataclass(frozen=True)
class StorageReport:
    """Index-structure bytes, excluding the key-record data itself."""

    structure: str
    model_bytes: int
    auxiliary_bytes: int

    @property
    def total_bytes(self) -> int:
        """Model + auxiliary structure bytes."""
        return self.model_bytes + self.auxiliary_bytes

    def row(self) -> str:
        """Formatted table row."""
        return (f"{self.structure:<24} model={self.model_bytes:>12,}B "
                f"aux={self.auxiliary_bytes:>12,}B "
                f"total={self.total_bytes:>12,}B")


def rmi_storage(index: RecursiveModelIndex) -> StorageReport:
    """Bytes of a two-stage RMI: root boundaries + per-model params.

    Each second-stage model: slope, intercept (floats) and the two
    error-window bounds (ints).  The equal-size build's root is a
    boundary table of one key + one start rank per model.
    """
    per_model = 2 * _FLOAT_BYTES + 2 * _INT_BYTES
    model_bytes = index.n_models * per_model
    root_bytes = index.n_models * (_INT_BYTES + _FLOAT_BYTES)
    return StorageReport("rmi", model_bytes, root_bytes)


def btree_storage(tree: BTree) -> StorageReport:
    """Bytes of a B-Tree: keys plus child pointers over all nodes."""
    keys = 0
    pointers = 0
    stack = [tree._root]
    while stack:
        node = stack.pop()
        keys += len(node.keys)
        pointers += len(node.children)
        stack.extend(node.children)
    return StorageReport("btree",
                         model_bytes=keys * _INT_BYTES,
                         auxiliary_bytes=pointers * _POINTER_BYTES)


def polynomial_stage_storage(n_models: int, degree: int) -> StorageReport:
    """Bytes of a hypothetical polynomial second stage (Sec. VI).

    ``degree + 1`` coefficients plus the normalisation pair per model,
    plus the same error-window pair the linear design keeps.
    """
    if n_models < 1 or degree < 1:
        raise ValueError("need positive model count and degree")
    per_model = ((degree + 1 + 2) * _FLOAT_BYTES + 2 * _INT_BYTES)
    return StorageReport(f"poly-deg{degree} stage",
                         model_bytes=n_models * per_model,
                         auxiliary_bytes=n_models * (_INT_BYTES
                                                     + _FLOAT_BYTES))
