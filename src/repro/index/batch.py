"""Vectorized batched lookups: the online-serving hot path.

The scalar lookup APIs (`SortedStore.search_window`,
`RecursiveModelIndex.lookup`, ...) pay Python-interpreter overhead per
key, which dominates once a workload replays millions of queries.
This module vectorizes the *identical* algorithm: a batch of windowed
binary searches advances all active queries one comparison per numpy
pass, so the per-key cost collapses to a handful of ufunc launches per
``log2(window)`` rounds.

Equivalence contract
--------------------
:func:`windowed_search_batch` performs, per element, exactly the loop
of :meth:`repro.index.sorted_store.SortedStore.search_window`: same
midpoint sequence, same early exit on a hit, same probe count.  The
batched index lookups built on it therefore return bit-identical
positions and probes to their scalar counterparts — pinned by
``tests/index/test_batch_lookup.py`` — which is what lets the serving
simulator batch queries without changing any measured cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchProbeResult", "BatchLookupResult",
           "windowed_search_batch", "side_table_search"]


@dataclass(frozen=True)
class BatchProbeResult:
    """Vector analogue of :class:`~repro.index.sorted_store.ProbeResult`.

    Attributes
    ----------
    positions:
        0-based slot per query, ``-1`` where absent.
    probes:
        Array cells touched per query (the lookup cost proxy).
    """

    positions: np.ndarray
    probes: np.ndarray

    @property
    def found(self) -> np.ndarray:
        """Boolean mask of queries that landed on a stored key."""
        return self.positions >= 0

    def __len__(self) -> int:
        return int(self.positions.size)


@dataclass(frozen=True)
class BatchLookupResult:
    """Vector analogue of :class:`~repro.index.rmi.LookupResult`."""

    found: np.ndarray
    positions: np.ndarray
    probes: np.ndarray
    model_index: np.ndarray

    def __len__(self) -> int:
        return int(self.positions.size)


def side_table_search(side: np.ndarray, queries: np.ndarray,
                      found: np.ndarray, probes: np.ndarray,
                      positions: np.ndarray | None = None,
                      offset: int = 0) -> None:
    """Binary-search a sorted side table for the still-missing queries.

    The shared miss-path idiom of every structure that pairs a model
    with side lists (delta buffers, quarantines, tombstone shadows):
    queries not yet ``found`` pay a full-range binary search over
    ``side``, accumulating into ``probes`` in place; hits flip
    ``found`` and, when a ``positions`` array is given, record
    ``offset + slot``.  One implementation keeps the probe accounting
    bit-identical everywhere the idiom appears — the scalar/batch and
    jobs-parity guarantees both lean on that.
    """
    miss = np.nonzero(~found)[0]
    if miss.size == 0 or side.size == 0:
        return
    lo = np.zeros(miss.size, dtype=np.int64)
    hi = np.full(miss.size, side.size - 1, dtype=np.int64)
    probe = windowed_search_batch(side, queries[miss], lo, hi)
    probes[miss] += probe.probes
    hit = probe.found
    found[miss[hit]] = True
    if positions is not None:
        positions[miss[hit]] = offset + probe.positions[hit]


def windowed_search_batch(sorted_keys: np.ndarray, queries: np.ndarray,
                          lo: np.ndarray,
                          hi: np.ndarray) -> BatchProbeResult:
    """Binary-search every query inside its own ``[lo, hi]`` window.

    All arrays align element-for-element with ``queries``; ``lo > hi``
    denotes an empty window (zero probes, not found).  Each numpy pass
    advances every still-active query by one comparison, mirroring the
    scalar loop exactly: probe the midpoint, stop on equality, else
    halve the window.  Total passes are bounded by the widest window's
    ``log2``, so a batch of B queries over windows of width W costs
    ``O(log W)`` vectorized steps instead of ``O(B log W)`` interpreted
    ones.
    """
    keys = np.asarray(sorted_keys)
    queries = np.asarray(queries, dtype=keys.dtype)
    lo = np.array(lo, dtype=np.int64, copy=True)
    hi = np.array(hi, dtype=np.int64, copy=True)
    positions = np.full(queries.shape, -1, dtype=np.int64)
    probes = np.zeros(queries.shape, dtype=np.int64)

    if queries.size <= 16:
        # Small batches lose to ufunc dispatch: a whole vectorized
        # pass costs ~a dozen array ops to advance each query one
        # comparison, so below ~16 queries the interpreted loop —
        # the *same* midpoint sequence and early exit — is faster.
        # This is the per-chunk shape of the columnar replay path.
        for i, (query, low, high) in enumerate(
                zip(queries.tolist(), lo.tolist(), hi.tolist())):
            cost = 0
            while low <= high:
                mid = (low + high) // 2
                cost += 1
                stored = int(keys[mid])
                if stored == query:
                    positions[i] = mid
                    break
                if stored < query:
                    low = mid + 1
                else:
                    high = mid - 1
            probes[i] = cost
        return BatchProbeResult(positions=positions, probes=probes)

    active = lo <= hi
    while np.any(active):
        idx = np.nonzero(active)[0]
        mid = (lo[idx] + hi[idx]) // 2
        probes[idx] += 1
        stored = keys[mid]
        q = queries[idx]

        hit = stored == q
        positions[idx[hit]] = mid[hit]
        active[idx[hit]] = False

        go_right = stored < q
        right = idx[go_right & ~hit]
        lo[right] = mid[go_right & ~hit] + 1
        left = idx[~go_right & ~hit]
        hi[left] = mid[~go_right & ~hit] - 1

        still = idx[~hit]
        active[still] = lo[still] <= hi[still]

    return BatchProbeResult(positions=positions, probes=probes)
