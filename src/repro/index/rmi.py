"""Two-stage Recursive Model Index (RMI) over a sorted store.

The index architecture of Kraska et al. that the paper attacks
(Sec. III-A): stage one routes a key to one of ``N`` second-stage
linear regression models; the chosen expert predicts a position in the
sorted array; a bounded "last mile" binary search inside the model's
recorded error window lands on the record.

Two build modes are provided:

* :meth:`RecursiveModelIndex.build_equal_size` — the paper's
  architecture: equal-size rank partitions with perfect stage-one
  routing (implemented by :class:`BoundaryRoot`, a partition-boundary
  table; the paper observes the trained NN always routes training
  keys correctly, so a boundary oracle is behaviourally identical and
  keeps the attack analysis exact);
* :meth:`RecursiveModelIndex.build_with_root` — Kraska-style routing
  through a trained :class:`~repro.index.first_stage.RootModel` (the
  numpy MLP, a piecewise-linear spline, or a single line); keys are
  assigned to whichever expert the root actually routes them to, so
  lookups remain correct by construction.

Every lookup returns its probe count; after a poisoning attack the
per-model error windows widen and the probe counts grow — this is the
end-to-end performance effect the paper's Ratio Loss metric proxies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from .batch import BatchLookupResult
from .first_stage import RootModel
from .sorted_store import SortedStore

__all__ = ["BoundaryRoot", "SecondStageModel", "LookupResult",
           "RecursiveModelIndex"]


class BoundaryRoot(RootModel):
    """Perfect router for equal-size rank partitions.

    Stores the first key of every partition and routes with one
    binary search over ``N`` boundaries.  Position prediction
    interpolates partition start ranks — only routing matters here.
    """

    def __init__(self) -> None:
        self._boundaries = np.empty(0, dtype=np.int64)
        self._start_ranks = np.empty(0, dtype=np.float64)
        self._n_total = 0

    def fit_boundaries(self, boundaries: np.ndarray,
                       start_ranks: np.ndarray,
                       n_total: int) -> "BoundaryRoot":
        """Install partition boundaries directly (no training)."""
        self._boundaries = np.asarray(boundaries, dtype=np.int64)
        self._start_ranks = np.asarray(start_ranks, dtype=np.float64)
        self._n_total = n_total
        return self

    def fit(self, keys: np.ndarray, ranks: np.ndarray) -> "BoundaryRoot":
        raise NotImplementedError(
            "BoundaryRoot is installed via fit_boundaries by the RMI builder")

    def predict_position(self, keys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._boundaries, np.asarray(keys),
                              side="right") - 1
        idx = np.clip(idx, 0, self._boundaries.size - 1)
        return self._start_ranks[idx]

    def route(self, keys: np.ndarray, n_total: int,
              n_models: int) -> np.ndarray:
        idx = np.searchsorted(self._boundaries, np.asarray(keys),
                              side="right") - 1
        return np.clip(idx, 0, n_models - 1)


@dataclass(frozen=True)
class SecondStageModel:
    """One linear expert plus its recorded error window.

    ``err_lo``/``err_hi`` are the most negative / most positive
    position errors observed over the keys this model serves; the
    lookup searches ``[pred + err_lo, pred + err_hi]``.  ``mse`` is
    the training loss the poisoning attack inflates.
    """

    slope: float
    intercept: float
    err_lo: int
    err_hi: int
    n_keys: int
    mse: float

    def predict(self, keys: np.ndarray | float) -> np.ndarray | float:
        """Predicted position(s) for key(s)."""
        return self.slope * np.asarray(keys, dtype=np.float64) + self.intercept

    @property
    def window(self) -> int:
        """Width of the last-mile search window in cells."""
        return self.err_hi - self.err_lo + 1


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one index lookup."""

    found: bool
    position: int
    probes: int
    model_index: int


class RecursiveModelIndex:
    """The two-stage learned index under attack."""

    def __init__(self, store: SortedStore, root: RootModel,
                 models: tuple[SecondStageModel, ...],
                 assignment: np.ndarray):
        self._store = store
        self._root = root
        self._models = models
        self._assignment = assignment  # model index per stored key
        # Per-model parameters as arrays, gathered once: models are
        # immutable, and lookup_batch is called per query run in the
        # serving hot path.
        self._slopes = np.asarray([m.slope for m in models])
        self._intercepts = np.asarray([m.intercept for m in models])
        self._err_lo = np.asarray([m.err_lo for m in models],
                                  dtype=np.int64)
        self._err_hi = np.asarray([m.err_hi for m in models],
                                  dtype=np.int64)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build_equal_size(cls, keyset: KeySet | np.ndarray,
                         n_models: int) -> "RecursiveModelIndex":
        """Equal-size rank partition + perfect routing (the paper's RMI)."""
        keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
            keyset, dtype=np.int64)
        n = keys.size
        if not 1 <= n_models <= n:
            raise ValueError(
                f"cannot build {n_models} models over {n} keys")
        pieces = np.array_split(np.arange(n), n_models)
        assignment = np.empty(n, dtype=np.int64)
        boundaries = np.empty(n_models, dtype=np.int64)
        start_ranks = np.empty(n_models, dtype=np.float64)
        for j, piece in enumerate(pieces):
            assignment[piece] = j
            boundaries[j] = keys[piece[0]]
            start_ranks[j] = float(piece[0])
        root = BoundaryRoot().fit_boundaries(boundaries, start_ranks, n)
        models = cls._fit_second_stage(keys, assignment, n_models)
        return cls(SortedStore(keys), root, models, assignment)

    @classmethod
    def build_with_root(cls, keyset: KeySet | np.ndarray, n_models: int,
                        root: RootModel) -> "RecursiveModelIndex":
        """Kraska-style build: assign keys by actual root routing."""
        keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
            keyset, dtype=np.int64)
        n = keys.size
        positions = np.arange(n, dtype=np.float64)
        root.fit(keys, positions)
        assignment = root.route(keys, n, n_models)
        models = cls._fit_second_stage(keys, assignment, n_models)
        return cls(SortedStore(keys), root, models, assignment)

    @staticmethod
    def _fit_second_stage(keys: np.ndarray, assignment: np.ndarray,
                          n_models: int) -> tuple[SecondStageModel, ...]:
        """Fit one linear model per expert on (key, global position)."""
        positions = np.arange(keys.size, dtype=np.float64)
        models = []
        for j in range(n_models):
            mask = assignment == j
            count = int(mask.sum())
            if count == 0:
                # An expert that serves no key predicts nothing; give
                # it a degenerate model with an empty window.
                models.append(SecondStageModel(0.0, 0.0, 0, 0, 0, 0.0))
                continue
            sub_keys = keys[mask].astype(np.float64)
            sub_pos = positions[mask]
            mk, mp = sub_keys.mean(), sub_pos.mean()
            dk = sub_keys - mk
            var = float(dk @ dk)
            if var == 0.0:
                slope, intercept = 0.0, mp
            else:
                slope = float(dk @ (sub_pos - mp)) / var
                intercept = mp - slope * mk
            pred = slope * sub_keys + intercept
            errors = sub_pos - pred
            mse = float(errors @ errors) / count
            models.append(SecondStageModel(
                slope=slope,
                intercept=intercept,
                err_lo=int(np.floor(errors.min())),
                err_hi=int(np.ceil(errors.max())),
                n_keys=count,
                mse=mse))
        return tuple(models)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def store(self) -> SortedStore:
        """The backing sorted array."""
        return self._store

    @property
    def root(self) -> RootModel:
        """The first-stage router."""
        return self._root

    def route_key(self, key: int) -> int:
        """Second-stage model index a key is dispatched to."""
        return int(self._root.route(np.asarray([key]), len(self._store),
                                    self.n_models)[0])

    @property
    def n_models(self) -> int:
        """Number of second-stage experts."""
        return len(self._models)

    @property
    def models(self) -> tuple[SecondStageModel, ...]:
        """The second-stage experts (read-only tuple)."""
        return self._models

    def second_stage_mse(self) -> np.ndarray:
        """Training MSE of each expert — the attack's target metric."""
        return np.asarray([m.mse for m in self._models])

    def max_search_window(self) -> int:
        """Largest last-mile window across experts (worst lookup)."""
        return max(m.window for m in self._models if m.n_keys > 0)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> LookupResult:
        """Find a key: route, predict, bounded last-mile search.

        Always correct for stored keys (error windows were recorded
        over exactly the keys each expert serves).  Absent keys report
        ``found=False`` after exhausting the window.
        """
        n = len(self._store)
        model_idx = int(self._root.route(np.asarray([key]), n,
                                         self.n_models)[0])
        model = self._models[model_idx]
        predicted = int(np.rint(model.predict(float(key))))
        predicted = min(max(predicted, 0), n - 1)
        lo_err = model.err_lo - 1  # rounding slack
        hi_err = model.err_hi + 1
        window = max(abs(lo_err), abs(hi_err))
        probe = self._store.search_window(key, predicted, window)
        return LookupResult(found=probe.found,
                            position=probe.position,
                            probes=probe.probes,
                            model_index=model_idx)

    def lookup_batch(self, keys: np.ndarray) -> BatchLookupResult:
        """Vectorized :meth:`lookup` over a batch of keys.

        Routes every key through the root in one pass, gathers each
        routed expert's line and error window, and resolves the last
        mile with one batched windowed binary search.  Found flags,
        positions, probe counts, and model indices are bit-identical
        to the scalar :meth:`lookup` per element; only the
        interpreter overhead goes away, which is what makes this the
        serving simulator's hot path.
        """
        n = len(self._store)
        keys = np.asarray(keys, dtype=np.int64)
        model_idx = np.asarray(
            self._root.route(keys, n, self.n_models), dtype=np.int64)
        predicted = np.rint(self._slopes[model_idx]
                            * keys.astype(np.float64)
                            + self._intercepts[model_idx]
                            ).astype(np.int64)
        predicted = np.clip(predicted, 0, n - 1)
        # Same rounding slack as the scalar path.
        window = np.maximum(np.abs(self._err_lo[model_idx] - 1),
                            np.abs(self._err_hi[model_idx] + 1))
        probe = self._store.search_window_batch(keys, predicted, window)
        return BatchLookupResult(found=probe.found,
                                 positions=probe.positions,
                                 probes=probe.probes,
                                 model_index=model_idx)

    def lookup_cost(self, keys: np.ndarray) -> float:
        """Mean probe count over a batch of lookups."""
        keys = np.asarray(keys)
        if keys.size == 0:
            raise ValueError("need at least one key to measure cost")
        return float(self.lookup_batch(keys).probes.mean())

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def range_scan(self, lo: int, hi: int) -> tuple[np.ndarray, int]:
        """All stored keys in ``[lo, hi]`` plus the probe cost.

        A learned range index only needs to *locate* the left endpoint
        — the rest is a sequential scan.  The left endpoint is found
        with the same route + predict + bounded-window machinery as a
        point lookup, searching for the insertion position of ``lo``;
        the probe count therefore inflates with poisoning exactly like
        point lookups do.
        """
        if hi < lo:
            return self._store.keys[:0], 0
        n = len(self._store)
        model = self._models[self.route_key(int(lo))]
        predicted = int(np.rint(model.predict(float(lo))))
        predicted = min(max(predicted, 0), n - 1)
        window = max(abs(model.err_lo - 1), abs(model.err_hi + 1))
        left = max(0, predicted - window)
        right = min(n - 1, predicted + window)
        probes = 0
        # Binary search for the first key >= lo inside the window,
        # falling back to widening if the window missed (cannot happen
        # for stored keys; absent `lo` values may need the fallback).
        keys = self._store.keys
        if keys[left] > lo or keys[right] < lo:
            start = int(np.searchsorted(keys, lo, side="left"))
            probes += max(1, int(np.ceil(np.log2(max(n, 2)))))
        else:
            lo_idx, hi_idx = left, right
            while lo_idx < hi_idx:
                mid = (lo_idx + hi_idx) // 2
                probes += 1
                if keys[mid] < lo:
                    lo_idx = mid + 1
                else:
                    hi_idx = mid
            start = lo_idx
        stop = int(np.searchsorted(keys, hi, side="right"))
        return keys[start:stop], probes
