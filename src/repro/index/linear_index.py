"""Single-model learned index: one linear regression over the CDF.

The simplest learned index — the building block Section IV attacks
directly.  One line predicts the position of every key; lookups fall
back to exponential search around the prediction, so the index is
always correct and its cost degrades smoothly with the model error.
"""

from __future__ import annotations

import numpy as np

from ..core.cdf_regression import LinearModel, fit_cdf_regression
from ..data.keyset import KeySet
from .batch import BatchProbeResult
from .sorted_store import ProbeResult, SortedStore

__all__ = ["LinearLearnedIndex"]


class LinearLearnedIndex:
    """A learned index backed by a single :class:`LinearModel`."""

    def __init__(self, keyset: KeySet | np.ndarray):
        keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
            keyset, dtype=np.int64)
        self._store = SortedStore(keys)
        # Fit on 0-based positions (rank - 1): position == memory slot.
        fit = fit_cdf_regression(keys, np.arange(keys.size, dtype=np.float64))
        self._model = fit.model
        self._mse = fit.mse
        # Worst observed position error over the training keys (+1 for
        # rounding slack) — the window the batched lookup searches.
        errors = (np.arange(keys.size, dtype=np.float64)
                  - fit.model.predict(keys))
        self._max_error = int(np.ceil(np.abs(errors).max())) + 1

    @property
    def model(self) -> LinearModel:
        """The fitted two-parameter model."""
        return self._model

    @property
    def mse(self) -> float:
        """Training MSE (position scale) — the attack's target."""
        return self._mse

    @property
    def store(self) -> SortedStore:
        """The backing sorted array."""
        return self._store

    def predict_position(self, key: int) -> int:
        """Clamped integer position prediction for a key."""
        n = len(self._store)
        predicted = int(np.rint(self._model.predict(float(key))))
        return min(max(predicted, 0), n - 1)

    @property
    def max_error(self) -> int:
        """Recorded worst-case position error (with rounding slack)."""
        return self._max_error

    def lookup(self, key: int) -> ProbeResult:
        """Locate a key via prediction + exponential last-mile search."""
        return self._store.search_exponential(key, self.predict_position(key))

    def lookup_batch(self, keys: np.ndarray) -> BatchProbeResult:
        """Vectorized lookup of many keys at once.

        Unlike the scalar :meth:`lookup` (which gallops outward because
        it assumes no stored bound), the batch path searches the window
        given by the *recorded* training error bound — every stored key
        is guaranteed inside it, so found flags and positions agree
        with the scalar path while the probe counts follow the
        windowed-search cost model of the RMI.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = len(self._store)
        predicted = np.rint(self._model.predict(keys)).astype(np.int64)
        predicted = np.clip(predicted, 0, n - 1)
        return self._store.search_window_batch(keys, predicted,
                                               self._max_error)

    def lookup_cost(self, keys: np.ndarray) -> float:
        """Mean probes over a batch — rises as poisoning inflates MSE."""
        keys = np.asarray(keys)
        if keys.size == 0:
            raise ValueError("need at least one key to measure cost")
        return float(np.mean([self.lookup(int(k)).probes for k in keys]))
