"""Index substrate: learned indexes and the traditional B-Tree baseline."""

from .batch import BatchLookupResult, BatchProbeResult, windowed_search_batch
from .btree import BTree, BTreeSearchResult
from .cost import (
    CostReport,
    btree_cost,
    compare_costs,
    linear_index_cost,
    rmi_cost,
)
from .dynamic import DynamicLearnedIndex
from .first_stage import LinearRoot, MLPRoot, PiecewiseLinearRoot, RootModel
from .linear_index import LinearLearnedIndex
from .rmi import (
    BoundaryRoot,
    LookupResult,
    RecursiveModelIndex,
    SecondStageModel,
)
from .sorted_store import ProbeResult, SortedStore

__all__ = [
    "SortedStore",
    "ProbeResult",
    "BatchProbeResult",
    "BatchLookupResult",
    "windowed_search_batch",
    "LinearLearnedIndex",
    "RootModel",
    "LinearRoot",
    "PiecewiseLinearRoot",
    "MLPRoot",
    "BoundaryRoot",
    "SecondStageModel",
    "LookupResult",
    "RecursiveModelIndex",
    "BTree",
    "BTreeSearchResult",
    "DynamicLearnedIndex",
    "CostReport",
    "rmi_cost",
    "linear_index_cost",
    "btree_cost",
    "compare_costs",
]
