"""A classic in-memory B-Tree — the traditional baseline.

The learned-index pitch is "RMI beats a highly-optimised B-Tree"; the
poisoning attack's punchline is that a poisoned RMI loses that edge.
To measure the crossover we need an actual B-Tree.  This one is a
textbook implementation (Knuth order ``2t``): every node holds between
``t - 1`` and ``2t - 1`` sorted keys, all leaves at equal depth.

Search reports *comparisons* and *node visits* so the cost model in
:mod:`repro.index.cost` can place the B-Tree and the (possibly
poisoned) RMI on the same axis.  Insertion uses the standard
split-on-the-way-down algorithm; :meth:`BTree.bulk_load` builds a
packed tree from sorted keys in linear time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["BTreeSearchResult", "BTree"]


@dataclass(frozen=True)
class BTreeSearchResult:
    """Outcome and cost of one B-Tree search."""

    found: bool
    comparisons: int
    node_visits: int


@dataclass
class _Node:
    keys: list[int] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """B-Tree of minimum degree ``t`` (nodes hold ``t-1 .. 2t-1`` keys)."""

    def __init__(self, min_degree: int = 16):
        if min_degree < 2:
            raise ValueError(f"minimum degree must be >= 2: {min_degree}")
        self._t = min_degree
        self._root = _Node()
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, sorted_keys: np.ndarray,
                  min_degree: int = 16) -> "BTree":
        """Build a packed tree from strictly increasing keys, bottom-up.

        Leaves are filled to ``2t - 1`` keys; one separator key is
        promoted between consecutive leaves, recursively, which yields
        the same shape repeated insertion of sorted data would only
        approximate.
        """
        keys = np.asarray(sorted_keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) <= 0):
            raise ValueError("bulk_load requires strictly increasing keys")
        tree = cls(min_degree)
        if keys.size == 0:
            return tree
        capacity = 2 * min_degree - 1

        # Chop keys into leaves of up to `capacity` keys with one
        # separator between consecutive leaves.
        level: list[_Node] = []
        separators: list[int] = []
        i = 0
        n = keys.size
        while i < n:
            take = min(capacity, n - i)
            remaining_after = n - (i + take)
            # Keep at least t-1 keys for a possible next leaf + separator.
            if 0 < remaining_after < min_degree:
                take -= (min_degree - remaining_after)
            node = _Node(keys=[int(k) for k in keys[i:i + take]])
            level.append(node)
            i += take
            if i < n:
                separators.append(int(keys[i]))
                i += 1

        while len(level) > 1:
            next_level: list[_Node] = []
            next_separators: list[int] = []
            j = 0
            while j < len(level):
                take = min(capacity + 1, len(level) - j)
                remaining_after = len(level) - (j + take)
                if 0 < remaining_after < min_degree:
                    take -= (min_degree - remaining_after)
                node = _Node(
                    keys=separators[j:j + take - 1],
                    children=level[j:j + take])
                next_level.append(node)
                j += take
                if j < len(level):
                    next_separators.append(separators[j - 1])
            separators = next_separators
            level = next_level

        tree._root = level[0]
        tree._size = int(n)
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone root leaf)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def search(self, key: int) -> BTreeSearchResult:
        """Standard top-down search with binary search inside nodes."""
        node = self._root
        comparisons = 0
        visits = 0
        while True:
            visits += 1
            lo, hi = 0, len(node.keys) - 1
            child = len(node.keys)
            while lo <= hi:
                mid = (lo + hi) // 2
                comparisons += 1
                stored = node.keys[mid]
                if stored == key:
                    return BTreeSearchResult(True, comparisons, visits)
                if stored < key:
                    lo = mid + 1
                else:
                    hi = mid - 1
                    child = mid
            if node.is_leaf:
                return BTreeSearchResult(False, comparisons, visits)
            node = node.children[lo if lo <= len(node.children) - 1 else child]

    def search_batch(self, keys: np.ndarray) -> tuple[np.ndarray,
                                                      np.ndarray,
                                                      np.ndarray]:
        """Search many keys; returns (found, comparisons, visits) arrays.

        Pointer-chasing over Python lists cannot be vectorized, so
        this is a convenience loop that gives the B-Tree the same
        batched surface as the learned indexes — the serving simulator
        charges it its honest per-key cost.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.shape, dtype=bool)
        comparisons = np.zeros(keys.shape, dtype=np.int64)
        visits = np.zeros(keys.shape, dtype=np.int64)
        for i, key in enumerate(keys):
            result = self.search(int(key))
            found[i] = result.found
            comparisons[i] = result.comparisons
            visits[i] = result.node_visits
        return found, comparisons, visits

    def __contains__(self, key: int) -> bool:
        return self.search(int(key)).found

    def range_scan(self, lo: int, hi: int) -> list[int]:
        """All stored keys in ``[lo, hi]`` in sorted order.

        In-order traversal with subtree pruning on the separator keys
        — the classic B-Tree range query the RMI competes with.
        """
        if hi < lo:
            return []
        out: list[int] = []
        self._range_walk(self._root, lo, hi, out)
        return out

    def _range_walk(self, node: _Node, lo: int, hi: int,
                    out: list[int]) -> None:
        if node.is_leaf:
            out.extend(k for k in node.keys if lo <= k <= hi)
            return
        for i, key in enumerate(node.keys):
            if lo < key:
                self._range_walk(node.children[i], lo, hi, out)
            if lo <= key <= hi:
                out.append(key)
            if key > hi:
                return
        self._range_walk(node.children[-1], lo, hi, out)

    def items(self) -> Iterator[int]:
        """All keys in sorted order (in-order traversal)."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[int]:
        if node.is_leaf:
            yield from node.keys
            return
        for i, key in enumerate(node.keys):
            yield from self._walk(node.children[i])
            yield key
        yield from self._walk(node.children[-1])

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Insert a key (duplicates rejected), splitting full nodes."""
        key = int(key)
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(children=[root])
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key)
        self._size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(keys=child.keys[t:],
                        children=child.children[t:])
        median = child.keys[t - 1]
        child.keys = child.keys[:t - 1]
        child.children = child.children[:t]
        parent.keys.insert(index, median)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: int) -> None:
        while True:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise ValueError(f"duplicate key: {key}")
            if node.is_leaf:
                node.keys.insert(idx, key)
                return
            child = node.children[idx]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, idx)
                if key == node.keys[idx]:
                    raise ValueError(f"duplicate key: {key}")
                if key > node.keys[idx]:
                    child = node.children[idx + 1]
                else:
                    child = node.children[idx]
            node = child

    @staticmethod
    def _bisect(keys: list[int], key: int) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any B-Tree invariant is violated."""
        t = self._t
        leaf_depths: set[int] = set()

        def visit(node: _Node, depth: int, lo: float, hi: float) -> None:
            assert node.keys == sorted(node.keys), "node keys unsorted"
            for k in node.keys:
                assert lo < k < hi, "key outside separator range"
            if node is not self._root:
                assert len(node.keys) >= t - 1, "underfull node"
            assert len(node.keys) <= 2 * t - 1, "overfull node"
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            assert len(node.children) == len(node.keys) + 1, "child count"
            bounds = [lo] + [float(k) for k in node.keys] + [hi]
            for i, child in enumerate(node.children):
                visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self._root, 0, float("-inf"), float("inf"))
        assert len(leaf_depths) <= 1, "leaves at unequal depth"
