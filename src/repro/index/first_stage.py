"""First-stage (root) models for the recursive model index.

The RMI's stage one looks at a key and dispatches it to one of ``N``
second-stage experts.  Kraska et al. use a small neural network to
capture the coarse shape of complex CDFs; simpler roots work for
near-linear ones.  Three interchangeable roots are provided:

* :class:`LinearRoot` — a single line over the full CDF; exact for
  uniform keys, coarse elsewhere;
* :class:`PiecewiseLinearRoot` — equi-depth piecewise linear spline of
  the CDF; a strong, cheap approximation of an arbitrary monotone CDF;
* :class:`MLPRoot` — a small one-hidden-layer network trained with
  Adam on the normalised CDF, built from scratch in numpy (the paper's
  stage-1 "NN model").

The attack never poisons stage one (Sec. V: keys used in training are
always routed to the correct expert), but the substrate must exist so
the end-to-end index — and the lookup-cost experiments — are real.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RootModel", "LinearRoot", "PiecewiseLinearRoot", "MLPRoot"]


class RootModel:
    """Interface: map keys to fractional positions in ``[0, n)``.

    Subclasses implement :meth:`fit` on the full CDF and
    :meth:`predict_position`; :meth:`route` converts a position
    estimate into a second-stage model index.
    """

    def fit(self, keys: np.ndarray, ranks: np.ndarray) -> "RootModel":
        """Train on the full CDF; returns self for chaining."""
        raise NotImplementedError

    def predict_position(self, keys: np.ndarray) -> np.ndarray:
        """Fractional predicted rank (same scale as ``ranks``)."""
        raise NotImplementedError

    def route(self, keys: np.ndarray, n_total: int,
              n_models: int) -> np.ndarray:
        """Second-stage model index for each key, clamped to range."""
        pos = self.predict_position(np.asarray(keys))
        idx = np.floor(pos * n_models / n_total).astype(np.int64)
        return np.clip(idx, 0, n_models - 1)


class LinearRoot(RootModel):
    """One global line over the CDF (adequate for uniform keys)."""

    def __init__(self) -> None:
        self._slope = 0.0
        self._intercept = 0.0

    def fit(self, keys: np.ndarray, ranks: np.ndarray) -> "LinearRoot":
        keys = np.asarray(keys, dtype=np.float64)
        ranks = np.asarray(ranks, dtype=np.float64)
        mk, mr = keys.mean(), ranks.mean()
        dk = keys - mk
        var = float(dk @ dk)
        if var == 0.0:
            self._slope, self._intercept = 0.0, mr
        else:
            self._slope = float(dk @ (ranks - mr)) / var
            self._intercept = mr - self._slope * mk
        return self

    def predict_position(self, keys: np.ndarray) -> np.ndarray:
        return self._slope * np.asarray(keys, dtype=np.float64) + self._intercept


class PiecewiseLinearRoot(RootModel):
    """Equi-depth piecewise-linear interpolation of the CDF.

    Stores ``n_segments + 1`` knots at evenly spaced ranks and
    interpolates between them — a compact monotone approximation that
    routes almost perfectly for any smooth CDF.
    """

    def __init__(self, n_segments: int = 64):
        if n_segments < 1:
            raise ValueError(f"need at least one segment: {n_segments}")
        self.n_segments = n_segments
        self._knot_keys = np.empty(0)
        self._knot_ranks = np.empty(0)

    def fit(self, keys: np.ndarray,
            ranks: np.ndarray) -> "PiecewiseLinearRoot":
        keys = np.asarray(keys, dtype=np.float64)
        ranks = np.asarray(ranks, dtype=np.float64)
        picks = np.linspace(0, keys.size - 1, self.n_segments + 1)
        picks = np.unique(picks.astype(np.int64))
        self._knot_keys = keys[picks]
        self._knot_ranks = ranks[picks]
        return self

    def predict_position(self, keys: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(keys, dtype=np.float64),
                         self._knot_keys, self._knot_ranks)


class MLPRoot(RootModel):
    """One-hidden-layer ReLU network trained with Adam (from scratch).

    Inputs and targets are min-max normalised; training minimises the
    MSE of the normalised CDF.  Sized like the paper's stage-1 model:
    a few dozen hidden units is plenty for routing.
    """

    def __init__(self, hidden: int = 32, epochs: int = 300,
                 learning_rate: float = 0.01, batch_size: int = 1024,
                 seed: int = 0):
        if hidden < 1:
            raise ValueError(f"need at least one hidden unit: {hidden}")
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._params: dict[str, np.ndarray] = {}
        self._key_lo = 0.0
        self._key_span = 1.0
        self._rank_lo = 0.0
        self._rank_span = 1.0

    # -- tiny Adam-trained MLP ----------------------------------------
    def fit(self, keys: np.ndarray, ranks: np.ndarray) -> "MLPRoot":
        rng = np.random.default_rng(self.seed)
        keys = np.asarray(keys, dtype=np.float64)
        ranks = np.asarray(ranks, dtype=np.float64)
        self._key_lo = float(keys.min())
        self._key_span = max(float(keys.max() - keys.min()), 1.0)
        self._rank_lo = float(ranks.min())
        self._rank_span = max(float(ranks.max() - ranks.min()), 1.0)
        x = (keys - self._key_lo) / self._key_span
        y = (ranks - self._rank_lo) / self._rank_span

        h = self.hidden
        params = {
            "w1": rng.normal(0.0, 1.0, size=h) * np.sqrt(2.0),
            "b1": rng.uniform(-1.0, 0.0, size=h),  # spread ReLU kinks
            "w2": rng.normal(0.0, 1.0, size=h) / np.sqrt(h),
            "b2": np.zeros(1),
        }
        moment1 = {k: np.zeros_like(v) for k, v in params.items()}
        moment2 = {k: np.zeros_like(v) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = x.size
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                xb, yb = x[idx], y[idx]
                # forward: hidden = relu(x*w1 + b1); out = hidden@w2 + b2
                pre = np.outer(xb, params["w1"]) + params["b1"]
                hid = np.maximum(pre, 0.0)
                out = hid @ params["w2"] + params["b2"][0]
                err = (out - yb) * (2.0 / xb.size)
                grads = {
                    "w2": hid.T @ err,
                    "b2": np.array([err.sum()]),
                }
                dhid = np.outer(err, params["w2"]) * (pre > 0.0)
                grads["w1"] = xb @ dhid
                grads["b1"] = dhid.sum(axis=0)

                step += 1
                for name, grad in grads.items():
                    moment1[name] = beta1 * moment1[name] + (1 - beta1) * grad
                    moment2[name] = (beta2 * moment2[name]
                                     + (1 - beta2) * grad * grad)
                    m_hat = moment1[name] / (1 - beta1 ** step)
                    v_hat = moment2[name] / (1 - beta2 ** step)
                    params[name] = params[name] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps)
        self._params = params
        return self

    def predict_position(self, keys: np.ndarray) -> np.ndarray:
        if not self._params:
            raise RuntimeError("MLPRoot.predict_position before fit")
        x = (np.asarray(keys, dtype=np.float64) - self._key_lo) / self._key_span
        pre = np.outer(np.atleast_1d(x), self._params["w1"]) + self._params["b1"]
        hid = np.maximum(pre, 0.0)
        out = hid @ self._params["w2"] + self._params["b2"][0]
        return out * self._rank_span + self._rank_lo
