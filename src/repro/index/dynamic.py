"""A dynamic (updatable) learned index with a delta buffer.

The paper's final future-work item: "as more follow-up works support
updates and deletions we need to consider adversaries that use the
update functionality of LIS to expand their attack surface."  This
module provides the substrate for that study: a learned index that
accepts inserts after construction, in the style of the
delta-buffer designs the paper cites (Hadian & Heinis; ALEX keeps
gaps instead, but the attack surface — retraining on attacker-
influenced data — is the same).

Design:

* the trained :class:`~repro.index.rmi.RecursiveModelIndex` serves
  the *base* keys;
* new keys land in a sorted *delta buffer*, searched by binary search
  on every lookup (so lookups stay correct but pay an extra
  ``O(log |delta|)``);
* when the buffer exceeds ``retrain_threshold`` (a fraction of the
  base size), base and delta merge and the RMI **retrains on the
  merged keys** — which is exactly the poisoning window: an adversary
  feeding crafted keys through the public ``insert`` API poisons the
  next retraining cycle without ever touching the initial build.

:meth:`DynamicLearnedIndex.lookup` reports probes so experiments can
watch the update-channel attack degrade post-retrain performance.
"""

from __future__ import annotations

import numpy as np

from ..data.keyset import KeySet
from .rmi import LookupResult, RecursiveModelIndex

__all__ = ["DynamicLearnedIndex"]


class DynamicLearnedIndex:
    """RMI + sorted delta buffer + retrain-on-threshold."""

    def __init__(self, keyset: KeySet | np.ndarray, n_models: int,
                 retrain_threshold: float = 0.1):
        """Build the base index.

        Parameters
        ----------
        keyset:
            Initial keys.
        n_models:
            Second-stage model count for every (re)build; the
            keys-per-model ratio therefore grows with the data, like a
            fixed-architecture deployment.
        retrain_threshold:
            Fraction of the base size the delta buffer may reach
            before a merge + retrain is triggered.
        """
        if not 0.0 < retrain_threshold <= 1.0:
            raise ValueError(
                f"retrain threshold must be in (0, 1]: {retrain_threshold}")
        keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
            keyset, dtype=np.int64)
        self._n_models = n_models
        self._threshold = retrain_threshold
        self._base = np.sort(keys)
        self._delta: list[int] = []
        self._rmi = RecursiveModelIndex.build_equal_size(self._base,
                                                         n_models)
        self._retrain_count = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        """Total keys currently stored (base + delta)."""
        return int(self._base.size) + len(self._delta)

    @property
    def delta_size(self) -> int:
        """Keys waiting in the delta buffer."""
        return len(self._delta)

    @property
    def retrain_count(self) -> int:
        """Number of merge + retrain cycles so far."""
        return self._retrain_count

    @property
    def rmi(self) -> RecursiveModelIndex:
        """The currently trained base index (replaced on retrain)."""
        return self._rmi

    def second_stage_mse(self) -> np.ndarray:
        """Per-model training MSE of the current base index."""
        return self._rmi.second_stage_mse()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        """Insert one key through the public update API.

        Returns True when the insertion triggered a retrain.  This is
        the channel the update-time adversary uses: its crafted keys
        sit in the buffer until the merge, then poison the retrained
        models.
        """
        key = int(key)
        if self.contains(key):
            raise ValueError(f"duplicate key: {key}")
        self._delta.append(key)
        self._delta.sort()
        if len(self._delta) >= self._threshold * self._base.size:
            self._merge_and_retrain()
            return True
        return False

    def insert_batch(self, keys: np.ndarray) -> int:
        """Insert many keys; returns the number of retrains triggered."""
        retrains = 0
        for key in np.asarray(keys):
            if self.insert(int(key)):
                retrains += 1
        return retrains

    def flush(self) -> None:
        """Force a merge + retrain regardless of the buffer level.

        Models the passage of time in experiments: organic inserts
        would eventually trip the threshold; flushing jumps straight
        to the next training cycle.  No-op on an empty buffer.
        """
        if self._delta:
            self._merge_and_retrain()

    def _merge_and_retrain(self) -> None:
        merged = np.sort(np.concatenate(
            [self._base, np.asarray(self._delta, dtype=np.int64)]))
        self._base = merged
        self._delta = []
        self._rmi = RecursiveModelIndex.build_equal_size(
            merged, self._n_models)
        self._retrain_count += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, key: int) -> bool:
        """Membership over base and delta."""
        i = int(np.searchsorted(self._base, key))
        if i < self._base.size and int(self._base[i]) == key:
            return True
        import bisect
        j = bisect.bisect_left(self._delta, key)
        return j < len(self._delta) and self._delta[j] == key

    def lookup(self, key: int) -> LookupResult:
        """Find a key: RMI over the base, binary search on the delta.

        Probes include the delta binary-search steps, so the cost of a
        swollen buffer (and of a poisoned retrain) is visible.
        """
        result = self._rmi.lookup(int(key))
        if result.found:
            return result
        # Fall through to the delta buffer.
        probes = result.probes
        lo, hi = 0, len(self._delta) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            probes += 1
            stored = self._delta[mid]
            if stored == key:
                return LookupResult(found=True,
                                    position=self._base.size + mid,
                                    probes=probes,
                                    model_index=result.model_index)
            if stored < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return LookupResult(found=False, position=-1, probes=probes,
                            model_index=result.model_index)

    def lookup_cost(self, keys: np.ndarray) -> float:
        """Mean probes over a batch of lookups."""
        keys = np.asarray(keys)
        if keys.size == 0:
            raise ValueError("need at least one key to measure cost")
        return float(np.mean([self.lookup(int(k)).probes for k in keys]))
