"""A dynamic (updatable) learned index with a delta buffer.

The paper's final future-work item: "as more follow-up works support
updates and deletions we need to consider adversaries that use the
update functionality of LIS to expand their attack surface."  This
module provides the substrate for that study: a learned index that
accepts inserts after construction, in the style of the
delta-buffer designs the paper cites (Hadian & Heinis; ALEX keeps
gaps instead, but the attack surface — retraining on attacker-
influenced data — is the same).

Design:

* the trained :class:`~repro.index.rmi.RecursiveModelIndex` serves
  the *base* keys;
* new keys land in a sorted *delta buffer*, searched by binary search
  on every lookup (so lookups stay correct but pay an extra
  ``O(log |delta|)``);
* when the buffer exceeds ``retrain_threshold`` (a fraction of the
  base size), base and delta merge and the RMI **retrains on the
  merged keys** — which is exactly the poisoning window: an adversary
  feeding crafted keys through the public ``insert`` API poisons the
  next retraining cycle without ever touching the initial build.

:meth:`DynamicLearnedIndex.lookup` reports probes so experiments can
watch the update-channel attack degrade post-retrain performance.

Defense hook: a ``sanitizer`` (e.g. TRIM) may screen every retrain's
training set.  Keys it rejects are *quarantined*, not dropped: they
move to a slow side list that stays binary-searchable, so lookups
remain correct while the learned models only ever train on keys the
defense trusts.  Quarantined keys re-enter the candidate pool at each
retrain, so a once-suspect key can be rehabilitated.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.keyset import KeySet
from .batch import BatchLookupResult, side_table_search
from .rmi import LookupResult, RecursiveModelIndex

__all__ = ["DynamicLearnedIndex"]


class DynamicLearnedIndex:
    """RMI + sorted delta buffer + retrain-on-threshold."""

    def __init__(self, keyset: KeySet | np.ndarray, n_models: int,
                 retrain_threshold: float = 0.1,
                 sanitizer: "Callable[[np.ndarray], np.ndarray] | None"
                 = None, sanitize_initial: bool = False,
                 quarantine_rejects: bool = True):
        """Build the base index.

        Parameters
        ----------
        keyset:
            Initial keys (trusted by default; the sanitizer screens
            *retrains*, where attacker-influenced updates enter the
            training set).
        n_models:
            Second-stage model count for every (re)build; the
            keys-per-model ratio therefore grows with the data, like a
            fixed-architecture deployment.
        retrain_threshold:
            Fraction of the base size the delta buffer may reach
            before a merge + retrain is triggered.
        sanitizer:
            Optional defense at the retrain boundary: receives the
            merged sorted training candidates and returns the subset
            to train on.  Rejected keys are quarantined (still
            served, via binary search) and reconsidered at the next
            retrain.
        sanitize_initial:
            Screen the *initial* build too.  The default trusts the
            construction keys (the paper's threat model); a caller
            rebuilding from a live — possibly already-poisoned — key
            set (a shard migration) passes ``True`` so the first
            model trains only on keys the defense trusts.
        quarantine_rejects:
            With the default ``True``, sanitizer rejects land on the
            quarantine side list (served via binary search,
            reconsidered at the next retrain).  ``False`` — the
            ablation arm — drops them from the index entirely, so
            their lookups miss.
        """
        if not 0.0 < retrain_threshold <= 1.0:
            raise ValueError(
                f"retrain threshold must be in (0, 1]: {retrain_threshold}")
        keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
            keyset, dtype=np.int64)
        self._n_models = n_models
        self._threshold = retrain_threshold
        self._sanitizer = sanitizer
        self._quarantine_rejects = bool(quarantine_rejects)
        self._base = np.sort(keys)
        self._delta: list[int] = []
        self._quarantine = np.empty(0, dtype=np.int64)
        if sanitize_initial and sanitizer is not None:
            kept = np.sort(np.asarray(sanitizer(self._base),
                                      dtype=np.int64))
            if np.setdiff1d(kept, self._base).size:
                raise ValueError(
                    "sanitizer returned keys outside the training set")
            if self._quarantine_rejects:
                self._quarantine = np.setdiff1d(self._base, kept)
            self._quarantine.setflags(write=False)
            self._base = kept
        self._rmi = RecursiveModelIndex.build_equal_size(self._base,
                                                         n_models)
        self._retrain_count = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        """Total keys currently stored (base + delta + quarantine)."""
        return (int(self._base.size) + len(self._delta)
                + int(self._quarantine.size))

    @property
    def delta_size(self) -> int:
        """Keys waiting in the delta buffer."""
        return len(self._delta)

    @property
    def delta_keys(self) -> np.ndarray:
        """The buffered keys (sorted copy)."""
        return np.asarray(self._delta, dtype=np.int64)

    @property
    def quarantine_size(self) -> int:
        """Keys the sanitizer rejected from the last retrain."""
        return int(self._quarantine.size)

    @property
    def quarantine_keys(self) -> np.ndarray:
        """The quarantined keys (sorted, read-only view)."""
        return self._quarantine

    @property
    def retrain_count(self) -> int:
        """Number of merge + retrain cycles so far."""
        return self._retrain_count

    @property
    def rmi(self) -> RecursiveModelIndex:
        """The currently trained base index (replaced on retrain)."""
        return self._rmi

    @property
    def retrain_threshold(self) -> float:
        """Delta-buffer fraction of the base that triggers a retrain."""
        return self._threshold

    def set_retrain_threshold(self, threshold: float) -> None:
        """Retarget the retrain trigger on a live index.

        Takes effect at the next :meth:`insert`'s buffer check —
        changing the threshold never retrains on the spot, so a
        defense tuner acting between operations cannot reorder retrain
        timing relative to the operation stream.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"retrain threshold must be in (0, 1]: {threshold}")
        self._threshold = threshold

    def set_sanitizer(self, sanitizer:
                      "Callable[[np.ndarray], np.ndarray] | None",
                      ) -> None:
        """Swap the retrain-boundary defense on a live index.

        Applies to the next retrain's training set; the current models
        and quarantine are untouched until then (``None`` disarms —
        quarantined keys then rejoin the model at the next merge).
        """
        self._sanitizer = sanitizer

    def second_stage_mse(self) -> np.ndarray:
        """Per-model training MSE of the current base index."""
        return self._rmi.second_stage_mse()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        """Insert one key through the public update API.

        Returns True when the insertion triggered a retrain.  This is
        the channel the update-time adversary uses: its crafted keys
        sit in the buffer until the merge, then poison the retrained
        models.
        """
        key = int(key)
        if self.contains(key):
            raise ValueError(f"duplicate key: {key}")
        self._delta.append(key)
        self._delta.sort()
        if len(self._delta) >= self._threshold * self._base.size:
            self._merge_and_retrain()
            return True
        return False

    def insert_batch(self, keys: np.ndarray) -> int:
        """Insert many keys; returns the number of retrains triggered."""
        retrains = 0
        for key in np.asarray(keys):
            if self.insert(int(key)):
                retrains += 1
        return retrains

    def _absorb_fresh(self, keys: np.ndarray) -> None:
        """Bulk-append keys into the delta buffer (columnar replay).

        The caller — a backend's segment replay — has already
        classified every key as absent from base, delta, and
        quarantine *and* split its batch at the retrain crossing, so
        no membership or threshold check runs here; one sort leaves
        the buffer identical to per-key :meth:`insert` appends.
        """
        if len(keys):
            self._delta.extend(int(key) for key in keys)
            self._delta.sort()

    def flush(self) -> None:
        """Force a merge + retrain regardless of the buffer level.

        Models the passage of time in experiments: organic inserts
        would eventually trip the threshold; flushing jumps straight
        to the next training cycle.  No-op on an empty buffer.
        """
        if self._delta:
            self._merge_and_retrain()

    def _merge_and_retrain(self) -> None:
        merged = np.sort(np.concatenate(
            [self._base, np.asarray(self._delta, dtype=np.int64),
             self._quarantine]))
        self._delta = []
        if self._sanitizer is not None:
            kept = np.sort(np.asarray(self._sanitizer(merged),
                                      dtype=np.int64))
            if np.setdiff1d(kept, merged).size:
                raise ValueError(
                    "sanitizer returned keys outside the training set")
            self._quarantine = (np.setdiff1d(merged, kept)
                                if self._quarantine_rejects
                                else np.empty(0, dtype=np.int64))
            merged = kept
        else:
            self._quarantine = np.empty(0, dtype=np.int64)
        self._quarantine.setflags(write=False)
        self._base = merged
        self._rmi = RecursiveModelIndex.build_equal_size(
            merged, self._n_models)
        self._retrain_count += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, key: int) -> bool:
        """Membership over base, delta, and quarantine."""
        i = int(np.searchsorted(self._base, key))
        if i < self._base.size and int(self._base[i]) == key:
            return True
        import bisect
        j = bisect.bisect_left(self._delta, key)
        if j < len(self._delta) and self._delta[j] == key:
            return True
        q = int(np.searchsorted(self._quarantine, key))
        return (q < self._quarantine.size
                and int(self._quarantine[q]) == key)

    def lookup(self, key: int) -> LookupResult:
        """Find a key: RMI over the base, then binary search on the
        delta buffer and (when a sanitizer quarantined keys) on the
        quarantine list.

        Probes include every side-list binary-search step, so the cost
        of a swollen buffer — and the slow-path tax a defense pays for
        quarantining — is visible.
        """
        result = self._rmi.lookup(int(key))
        if result.found:
            return result
        # Fall through to the delta buffer, then the quarantine.
        probes = result.probes
        for offset, side in (
                (int(self._base.size), self._delta),
                (int(self._base.size) + len(self._delta),
                 self._quarantine)):
            lo, hi = 0, len(side) - 1
            while lo <= hi:
                mid = (lo + hi) // 2
                probes += 1
                stored = int(side[mid])
                if stored == key:
                    return LookupResult(found=True,
                                        position=offset + mid,
                                        probes=probes,
                                        model_index=result.model_index)
                if stored < key:
                    lo = mid + 1
                else:
                    hi = mid - 1
        return LookupResult(found=False, position=-1, probes=probes,
                            model_index=result.model_index)

    def lookup_batch(self, keys: np.ndarray) -> BatchLookupResult:
        """Vectorized :meth:`lookup`: batched RMI probe, then one
        batched binary search over the delta buffer for the misses.

        Bit-identical to the scalar path per element — the delta
        search runs the same full-range binary search the scalar loop
        does, so a swollen (or poison-laden) buffer costs exactly the
        same probes either way.
        """
        keys = np.asarray(keys, dtype=np.int64)
        base = self._rmi.lookup_batch(keys)
        found = base.found.copy()
        positions = base.positions.copy()
        probes = base.probes.copy()
        side_table_search(np.asarray(self._delta, dtype=np.int64),
                          keys, found, probes, positions=positions,
                          offset=int(self._base.size))
        side_table_search(self._quarantine, keys, found, probes,
                          positions=positions,
                          offset=int(self._base.size)
                          + len(self._delta))
        return BatchLookupResult(found=found, positions=positions,
                                 probes=probes,
                                 model_index=base.model_index)

    def lookup_cost(self, keys: np.ndarray) -> float:
        """Mean probes over a batch of lookups."""
        keys = np.asarray(keys)
        if keys.size == 0:
            raise ValueError("need at least one key to measure cost")
        return float(self.lookup_batch(keys).probes.mean())
