"""Synthetic key generators for the paper's evaluation workloads.

Section IV-E poisons linear regressions on *uniformly* distributed
keysets (the case where the CDF is near-linear and a learned index
shines) and, in the appendix (Fig. 8), on *normally* distributed ones.
Section V-B attacks RMIs built over *uniform* and *log-normal*
(``mu = 0``, ``sigma = 2``) keysets, the same parameterisation as the
original learned-index paper.

All generators return a :class:`~repro.data.keyset.KeySet` of exactly
``n`` unique integers inside the requested domain, drawing extra
samples until uniqueness is met (rejection top-up), so the advertised
density is exact.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .keyset import Domain, KeySet

__all__ = [
    "uniform_keyset",
    "lognormal_keyset",
    "normal_keyset",
    "keyset_from_sampler",
]

_MAX_TOPUP_ROUNDS = 64


def keyset_from_sampler(n: int, domain: Domain,
                        sampler: Callable[[int], np.ndarray],
                        rng: np.random.Generator) -> KeySet:
    """Draw exactly ``n`` unique in-domain keys from ``sampler``.

    ``sampler(size)`` returns ``size`` (possibly duplicate, possibly
    out-of-range) integer draws; we clip to the domain, deduplicate and
    keep sampling until ``n`` unique keys are collected, then subsample
    uniformly so the final keyset is an unbiased size-``n`` subset.

    Raises
    ------
    ValueError
        If the domain holds fewer than ``n`` values.
    RuntimeError
        If the sampler cannot produce ``n`` unique values (for
        instance a constant sampler) after a bounded number of rounds.
    """
    if n <= 0:
        raise ValueError(f"need a positive number of keys, got {n}")
    if n > domain.size:
        raise ValueError(
            f"cannot place {n} unique keys in a domain of size {domain.size}")

    unique: np.ndarray = np.empty(0, dtype=np.int64)
    for _ in range(_MAX_TOPUP_ROUNDS):
        draw = np.asarray(sampler(max(2 * n, 1024)), dtype=np.int64)
        draw = draw[(draw >= domain.lo) & (draw <= domain.hi)]
        unique = np.unique(np.concatenate([unique, draw]))
        if unique.size >= n:
            chosen = rng.choice(unique, size=n, replace=False)
            return KeySet(chosen, domain)
    raise RuntimeError(
        f"sampler produced only {unique.size} unique keys, needed {n}")


def uniform_keyset(n: int, domain: Domain,
                   rng: np.random.Generator) -> KeySet:
    """``n`` unique keys uniform over the domain (Sec. IV-E, V-B).

    For dense requests (``n`` close to ``m``) rejection sampling stalls,
    so beyond 50% density we draw a permutation-free exact sample.
    """
    if n > domain.size:
        raise ValueError(
            f"cannot place {n} unique keys in a domain of size {domain.size}")
    if n >= domain.size // 2:
        # Exact sampling without replacement over the full universe.
        chosen = rng.choice(domain.size, size=n, replace=False) + domain.lo
        return KeySet(chosen, domain)
    return keyset_from_sampler(
        n, domain,
        lambda size: rng.integers(domain.lo, domain.hi + 1, size=size),
        rng)


def lognormal_keyset(n: int, domain: Domain, rng: np.random.Generator,
                     mu: float = 0.0, sigma: float = 2.0) -> KeySet:
    """``n`` unique keys with a log-normal CDF (Sec. V-B, Fig. 6).

    Raw ``LogNormal(mu, sigma)`` draws are scaled so the distribution's
    99.9th percentile lands at the top of the domain, reproducing the
    heavy concentration of keys near the low end of the universe that
    makes some second-stage models handle very dense key clusters.
    """
    p999 = float(np.exp(mu + sigma * 3.09))  # ~99.9th percentile
    scale = (domain.size - 1) / p999

    def sampler(size: int) -> np.ndarray:
        raw = rng.lognormal(mean=mu, sigma=sigma, size=size)
        return np.floor(raw * scale).astype(np.int64) + domain.lo

    return keyset_from_sampler(n, domain, sampler, rng)


def normal_keyset(n: int, domain: Domain,
                  rng: np.random.Generator) -> KeySet:
    """``n`` unique keys from the paper's clipped normal (Fig. 8).

    For a domain ``U = [a, b]`` the paper samples
    ``Normal(mu = (a + b) / 2, sigma = (b - a) / 3)`` — a wide bell
    whose tails spill slightly outside the domain and are rejected.
    """
    mu = (domain.lo + domain.hi) / 2.0
    sigma = (domain.hi - domain.lo) / 3.0
    if sigma == 0:  # single-value domain
        return KeySet(np.array([domain.lo]), domain)

    def sampler(size: int) -> np.ndarray:
        return np.rint(rng.normal(mu, sigma, size=size)).astype(np.int64)

    return keyset_from_sampler(n, domain, sampler, rng)
