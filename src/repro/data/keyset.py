"""Keysets and key domains: the training data of every learned index.

A learned index stores a set of *keys* drawn from a finite integer
*domain* (the key universe ``K`` of the paper, Section III).  The index
is trained on the empirical, non-normalised cumulative distribution
function (CDF) of the keys: the pairs ``(key, rank)`` where ``rank`` is
the 1-based position of the key in sorted order.

:class:`KeySet` is the immutable value object passed between the data
generators, the index structures and the poisoning attacks.  Inserting
keys returns a *new* :class:`KeySet`, which makes the compound effect
of poisoning (every insertion re-ranks all larger keys) explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Domain", "KeySet"]


@dataclass(frozen=True)
class Domain:
    """A finite, inclusive integer key universe ``[lo, hi]``.

    The paper denotes the universe by ``K`` with ``|K| = m``.  Keys are
    non-negative integers; the domain records which integers are legal
    key values so the attack can enumerate unoccupied candidates.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty domain: [{self.lo}, {self.hi}]")
        if self.lo < 0:
            raise ValueError(f"keys must be non-negative, got lo={self.lo}")

    @property
    def size(self) -> int:
        """Number of legal key values, ``m = hi - lo + 1``."""
        return self.hi - self.lo + 1

    def __contains__(self, key: int) -> bool:
        return self.lo <= key <= self.hi

    def contains_all(self, keys: np.ndarray) -> bool:
        """Vectorised membership check for an array of keys."""
        if keys.size == 0:
            return True
        return bool(keys.min() >= self.lo and keys.max() <= self.hi)

    @classmethod
    def of_size(cls, m: int, lo: int = 0) -> "Domain":
        """Build the domain ``[lo, lo + m - 1]`` of ``m`` values."""
        if m <= 0:
            raise ValueError(f"domain size must be positive, got {m}")
        return cls(lo, lo + m - 1)


class KeySet:
    """An immutable sorted set of unique integer keys in a domain.

    Parameters
    ----------
    keys:
        Any iterable of integers.  Keys are deduplicated and sorted;
        the paper's model assumes no multiplicities.
    domain:
        The key universe.  Defaults to ``[min(keys), max(keys)]``,
        which matches the attack's restriction to in-range poisoning
        keys (out-of-range keys are trivially filtered by defenses).
    """

    __slots__ = ("_keys", "_domain")

    def __init__(self, keys: Iterable[int] | np.ndarray,
                 domain: Domain | None = None):
        arr = np.unique(np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys,
                                   dtype=np.int64))
        if arr.size == 0:
            raise ValueError("a keyset must contain at least one key")
        if domain is None:
            domain = Domain(int(arr[0]), int(arr[-1]))
        if not domain.contains_all(arr):
            raise ValueError(
                f"keys outside domain [{domain.lo}, {domain.hi}]: "
                f"range is [{arr[0]}, {arr[-1]}]")
        self._keys = arr
        self._keys.setflags(write=False)
        self._domain = domain

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def keys(self) -> np.ndarray:
        """The sorted unique keys (read-only int64 array)."""
        return self._keys

    @property
    def domain(self) -> Domain:
        """The key universe this keyset lives in."""
        return self._domain

    @property
    def n(self) -> int:
        """Number of keys (the paper's ``n``)."""
        return int(self._keys.size)

    @property
    def m(self) -> int:
        """Size of the key universe (the paper's ``m``)."""
        return self._domain.size

    @property
    def density(self) -> float:
        """Fraction of the universe that is occupied, ``n / m``."""
        return self.n / self.m

    @property
    def ranks(self) -> np.ndarray:
        """1-based ranks ``1..n`` aligned with :attr:`keys`.

        Together ``(keys, ranks)`` are the points of the
        non-normalised empirical CDF the index regresses on.
        """
        return np.arange(1, self.n + 1, dtype=np.int64)

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self._keys)

    def __contains__(self, key: int) -> bool:
        i = int(np.searchsorted(self._keys, key))
        return i < self.n and int(self._keys[i]) == int(key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeySet):
            return NotImplemented
        return (self._domain == other._domain
                and np.array_equal(self._keys, other._keys))

    def __repr__(self) -> str:
        return (f"KeySet(n={self.n}, domain=[{self._domain.lo}, "
                f"{self._domain.hi}], density={self.density:.2%})")

    # ------------------------------------------------------------------
    # Rank / CDF queries
    # ------------------------------------------------------------------
    def rank_of(self, key: int) -> int:
        """Rank the key has, or would take, if inserted (1-based).

        For a stored key this is its CDF value; for an absent key it is
        the rank a poisoning insertion at that value would receive.
        Both equal ``|{k in K : k < key}| + 1``.
        """
        return int(np.searchsorted(self._keys, key, side="left")) + 1

    def insertion_ranks(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised rank each candidate key would take on insertion.

        A candidate key ``x`` takes rank ``|{k in K : k < x}| + 1``.
        Stored keys report their own rank.
        """
        return np.searchsorted(self._keys, keys, side="left") + 1

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def insert(self, new_keys: Iterable[int] | np.ndarray) -> "KeySet":
        """Return a new keyset with ``new_keys`` added.

        This models the poisoning injection: ranks of all keys larger
        than an inserted key shift up by one in the returned keyset.

        Raises
        ------
        ValueError
            If any new key duplicates a stored key or falls outside
            the domain (the threat model forbids both).
        """
        extra = np.unique(np.asarray(list(new_keys) if not isinstance(new_keys, np.ndarray)
                                     else new_keys, dtype=np.int64))
        if extra.size == 0:
            return self
        if not self._domain.contains_all(extra):
            raise ValueError("inserted keys fall outside the key domain")
        merged = np.concatenate([self._keys, extra])
        if np.unique(merged).size != merged.size:
            raise ValueError("inserted keys duplicate existing keys")
        return KeySet(merged, self._domain)

    def remove(self, victims: Iterable[int] | np.ndarray) -> "KeySet":
        """Return a new keyset without ``victims`` (used by defenses)."""
        drop = np.asarray(list(victims) if not isinstance(victims, np.ndarray)
                          else victims, dtype=np.int64)
        mask = ~np.isin(self._keys, drop)
        return KeySet(self._keys[mask], self._domain)

    def restrict(self, lo: int, hi: int) -> "KeySet":
        """Return the sub-keyset with keys in ``[lo, hi]``, same domain."""
        left = int(np.searchsorted(self._keys, lo, side="left"))
        right = int(np.searchsorted(self._keys, hi, side="right"))
        return KeySet(self._keys[left:right], self._domain)

    def partition(self, n_parts: int) -> list["KeySet"]:
        """Split into ``n_parts`` contiguous rank partitions.

        This is the RMI's equal-size key partition (Section III-A):
        the first ``n mod n_parts`` partitions get one extra key.  Each
        partition keeps the *parent* domain so per-partition attacks
        may use the gaps adjacent to the partition's keys.
        """
        if not 1 <= n_parts <= self.n:
            raise ValueError(
                f"cannot split {self.n} keys into {n_parts} partitions")
        pieces = np.array_split(self._keys, n_parts)
        return [KeySet(piece, self._domain) for piece in pieces]


def as_keyset(keys: "KeySet | Sequence[int] | np.ndarray",
              domain: Domain | None = None) -> KeySet:
    """Coerce raw keys to a :class:`KeySet` (pass-through if already one)."""
    if isinstance(keys, KeySet):
        return keys
    return KeySet(keys, domain)
