"""Simulated stand-ins for the paper's two real-world datasets.

The paper evaluates the RMI attack on (A) unique salaries of
Miami-Dade County employees [24] and (B) latitudes of schools from
OpenStreetMap [30].  Neither raw file ships with this reproduction
(no network access), so we generate synthetic keysets that match every
statistic the paper reports and the CDF shapes it plots (Fig. 7):

* **Salaries** — ``n = 5,300`` unique integer salaries between
  $22,733 and $190,034 (universe ``m = 167,301``, density 3.71%).
  The plotted CDF rises steeply through the $40k-$80k band and
  flattens into a long thin right tail, the classic right-skewed
  salary shape.  We reproduce it with a log-normal body plus a small
  high-earner tail component.
* **School latitudes** — latitudes in ``[-30, +50]`` scaled by 15,000
  and rounded: ``n = 302,973`` unique keys in a universe of
  ``1,200,000`` (density 25.25%).  The plotted CDF has distinct
  plateaus: schools concentrate in inhabited latitude bands (India,
  China/US/Europe, Brazil...).  We reproduce it with a mixture of
  latitude bumps weighted by population.

The attacks consume only the key multiset (values, ranks, density), so
matching support, cardinality, density and CDF shape exercises exactly
the code paths the paper's experiments exercise.  The substitution is
recorded in DESIGN.md section 2.
"""

from __future__ import annotations

import numpy as np

from .keyset import Domain, KeySet
from .synthetic import keyset_from_sampler

__all__ = [
    "miami_salaries",
    "osm_school_latitudes",
    "SALARY_N",
    "SALARY_DOMAIN",
    "OSM_N",
    "OSM_DOMAIN",
]

#: Published statistics of the Miami-Dade salary dataset (Sec. V-C).
SALARY_N = 5_300
SALARY_DOMAIN = Domain(22_733, 190_034)

#: Published statistics of the OSM school-latitude dataset (Sec. V-C).
OSM_N = 302_973
OSM_DOMAIN = Domain(0, 1_199_999)


def miami_salaries(rng: np.random.Generator,
                   n: int = SALARY_N) -> KeySet:
    """Synthetic Miami-Dade salary keyset (dataset A of Sec. V-C).

    A 90/10 mixture of a log-normal body (median ~$62k) and a wider
    high-earner log-normal tail, clipped to the published range.  The
    resulting CDF matches Fig. 7 (top): near-vertical through the
    middle band, long flat tail above $120k.

    Parameters
    ----------
    rng:
        Source of randomness; fix the seed for reproducible keysets.
    n:
        Number of unique salaries; defaults to the paper's 5,300.
        Smaller values are handy in tests.
    """
    body_median = 62_000.0
    body_sigma = 0.28
    tail_median = 115_000.0
    tail_sigma = 0.25
    tail_weight = 0.10

    def sampler(size: int) -> np.ndarray:
        n_tail = int(size * tail_weight)
        body = rng.lognormal(np.log(body_median), body_sigma,
                             size=size - n_tail)
        tail = rng.lognormal(np.log(tail_median), tail_sigma, size=n_tail)
        return np.rint(np.concatenate([body, tail])).astype(np.int64)

    return keyset_from_sampler(n, SALARY_DOMAIN, sampler, rng)


# (centre latitude, std in degrees, weight) for inhabited bands with
# many schools; weights roughly follow population at that latitude.
_LATITUDE_BUMPS = (
    (28.0, 6.0, 0.30),   # northern India, southern China, Mexico
    (40.0, 5.0, 0.28),   # US, southern Europe, northern China, Japan
    (48.0, 3.0, 0.10),   # northern Europe (clipped at +50)
    (12.0, 6.0, 0.14),   # sub-Saharan Africa, SE Asia
    (-8.0, 7.0, 0.10),   # Indonesia, Brazil north
    (-25.0, 5.0, 0.08),  # Brazil south, South Africa, Australia
)

_LAT_LO, _LAT_HI, _LAT_SCALE = -30.0, 50.0, 15_000.0


def osm_school_latitudes(rng: np.random.Generator,
                         n: int = OSM_N) -> KeySet:
    """Synthetic OSM school-latitude keyset (dataset B of Sec. V-C).

    Latitudes are drawn from a mixture of population bumps over
    ``[-30, +50]`` degrees, scaled by 15,000, shifted to start at 0 and
    rounded — the exact preprocessing the paper describes.  The dense
    bands produce the plateau-rich CDF of Fig. 7 (bottom).

    Parameters
    ----------
    rng:
        Source of randomness; fix the seed for reproducible keysets.
    n:
        Number of unique keys; defaults to the paper's 302,973.  Use a
        smaller ``n`` for quick runs — density then drops accordingly,
        which EXPERIMENTS.md notes next to the affected numbers.
    """
    centres = np.array([b[0] for b in _LATITUDE_BUMPS])
    stds = np.array([b[1] for b in _LATITUDE_BUMPS])
    weights = np.array([b[2] for b in _LATITUDE_BUMPS])
    weights = weights / weights.sum()

    def sampler(size: int) -> np.ndarray:
        component = rng.choice(len(centres), size=size, p=weights)
        lat = rng.normal(centres[component], stds[component])
        lat = lat[(lat >= _LAT_LO) & (lat <= _LAT_HI)]
        return np.rint((lat - _LAT_LO) * _LAT_SCALE).astype(np.int64)

    return keyset_from_sampler(n, OSM_DOMAIN, sampler, rng)
