"""Data substrate: key domains, keysets and workload generators."""

from .keyset import Domain, KeySet, as_keyset
from .realworld import (
    OSM_DOMAIN,
    OSM_N,
    SALARY_DOMAIN,
    SALARY_N,
    miami_salaries,
    osm_school_latitudes,
)
from .synthetic import (
    keyset_from_sampler,
    lognormal_keyset,
    normal_keyset,
    uniform_keyset,
)

__all__ = [
    "Domain",
    "KeySet",
    "as_keyset",
    "uniform_keyset",
    "lognormal_keyset",
    "normal_keyset",
    "keyset_from_sampler",
    "miami_salaries",
    "osm_school_latitudes",
    "SALARY_N",
    "SALARY_DOMAIN",
    "OSM_N",
    "OSM_DOMAIN",
]
