"""The leave-one-out ablation grid: plan, cell runners, result.

One sweep per scenario: an **all-on baseline** cell with every
applicable defense armed, one **one-off** cell per component (that
component removed, the rest exactly as the baseline runs them), and
an **all-off floor**.  Same-world design as the serving grids: every
cell of one scenario replays the identical trace over the identical
base keys with the identical adversary, so metric deltas are
attributable to the removed component alone.

Two scenarios, both reusing the committed serving-cell recipes:

* ``drip`` — the closed-loop escalation duel of the ``closedloop``
  target (rate-driven trace, Algorithm 2 pool, latency-escalation
  adversary), with the TRIM auto-tuner's keep rule, the quarantine
  side list, and the churn-burst threshold boost as the toggleable
  layers;
* ``cluster`` — the sharded multi-tenant victim scenario of the
  ``cluster`` target (concentrated placement against tenant 0), with
  the full managed stack toggleable: TRIM, quarantine, deferral, SLO
  weighting, the rebalancer, and migration re-screening.  Over the
  process transport with ``replicas >= 3`` the grid adds the
  replication layer (quorum reads + divergence detection) and plants
  the silent poisoned-replica compromise in *every* cell, so the
  quorum one-off measures what replication actually absorbs.

Cells are engine-backed (checkpoint, resume, process/thread fan-out,
jobs parity) and content-addressed purely by their parameters — the
``--components`` filter only drops one-off cells from the plan, it
never changes a surviving cell's digest, so filtered and resumed
runs share checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..cluster import (
    ClusterRouter,
    ClusterSimulator,
    ConcentratedClusterAdversary,
    FaultSpec,
    Rebalancer,
    ShardMap,
    SloWeightedDefense,
    TransportClusterRouter,
    TransportConfig,
    make_cluster_adversary,
)
from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import KeySet
from ..experiments.closedloop_serving import spec_for as drip_spec_for
from ..experiments.cluster_serving import (
    VICTIM_TENANT,
    spec_for as cluster_spec_for,
)
from ..experiments.report import format_ratio, render_table, section
from ..io import json_float, parse_json_float
from ..runtime import Cell, CellOutput, CheckpointStore, SweepEngine
from ..workload import (
    ServingSimulator,
    TrimAutoTuner,
    generate_rate_driven_trace,
    generate_trace,
    make_adversary,
    make_arrival,
    make_backend,
)
from .components import (
    COMPONENT_NAMES,
    SCENARIOS,
    applicable_components,
)
from .importance import (
    AblationReport,
    MetricSummary,
    build_report,
    format_reports,
    to_section,
)

__all__ = ["AblateConfig", "AblateRow", "AblateResult", "plan_cells",
           "run_ablate_cell", "run", "quick_config", "full_config",
           "variant_names"]

#: The calibrated drip-scenario tuner: a shallow deadband plus a
#: strong keep gain so the TRIM arm actually engages under the
#: escalation adversary (the neutral defaults barely move against a
#: drip — the PR 4 finding), matching the managed cluster arm's
#: calibration in ``cluster_serving``.
DRIP_KEEP_DEADBAND = 0.1
DRIP_KEEP_GAIN = 0.75

#: Ticks that each receive one dose of the silent replica compromise
#: (cluster scenario over the process transport with replicas >= 3).
COMPROMISE_TICKS = (1, 2, 3, 4)


@dataclass(frozen=True)
class AblateConfig:
    """One leave-one-out grid: scenarios, filter, scenario knobs."""

    scenarios: tuple[str, ...] = SCENARIOS
    components: "tuple[str, ...] | None" = None
    backend: str = "rmi"
    n_base_keys: int = 600
    # drip scenario (mirrors the closedloop quick grid)
    arrival: str = "poisson"
    n_ticks: int = 14
    rate: float = 90.0
    target_amplification: float = 1.3
    # cluster scenario (mirrors the cluster quick grid)
    tenant_layout: str = "skewed"
    n_shards: int = 4
    n_tenants: int = 3
    tenant_skew: float = 0.5
    n_ops: int = 2_400
    tick_ops: int = 200
    slo_p95: float = 5.0
    slo_tier_factor: float = 1.5
    max_shards: int = 12
    # shared
    poison_percentage: float = 12.0
    insert_fraction: float = 0.04
    rebuild_threshold: float = 0.12
    model_size: int = 100
    transport: str = "inproc"
    replicas: int = 1
    seed: int = 11

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("scenarios must name at least one "
                             "scenario to ablate")
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise ValueError(
                    f"scenarios must name scenarios in "
                    f"{list(SCENARIOS)}, got {scenario!r}")
        if self.components is not None:
            if not self.components:
                raise ValueError(
                    "components must name at least one defense "
                    "component when given")
            for name in self.components:
                if name not in COMPONENT_NAMES:
                    raise ValueError(
                        f"components must name defense components in "
                        f"{list(COMPONENT_NAMES)}, got {name!r}")
        if self.transport not in ("inproc", "process"):
            raise ValueError(
                f"transport must be 'inproc' or 'process', got "
                f"{self.transport!r}")
        if self.replicas < 1:
            raise ValueError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.replicas > 1 and self.transport != "process":
            raise ValueError(
                "replicas > 1 requires the process transport, got "
                f"transport={self.transport!r}")


def quick_config() -> AblateConfig:
    """13 cells (5 drip + 8 cluster), seconds of work — CI smoke.

    The defaults are the calibrated demonstration grid: every defense
    the scenarios carry gets a measurable leave-one-out delta, the
    all-on baseline beats the all-off floor on victim amplification,
    and on the drip scenario retrain deferral outranks the TRIM
    screen (pinned by ``tests/experiments/test_ablate.py``) — the
    paper's Section VI point that screening cannot cheaply separate
    CDF-shaped poison, while not-retraining-on-the-burst can.
    """
    return AblateConfig()


def full_config() -> AblateConfig:
    """The overnight grid: bigger worlds, same leave-one-out shape."""
    return AblateConfig(
        n_base_keys=2_000,
        n_ticks=24,
        rate=250.0,
        n_ops=8_000,
        tick_ops=400)


def variant_names(config: AblateConfig,
                  scenario: str) -> tuple[str, ...]:
    """Plan order: baseline, one ``no-<component>`` each, floor."""
    specs = applicable_components(scenario, config.transport,
                                  config.replicas, config.components)
    return ("baseline", *(f"no-{spec.name}" for spec in specs),
            "floor")


def plan_cells(config: AblateConfig) -> list[Cell]:
    """Every scenario's leave-one-out cells, in plan order."""
    cells = []
    for scenario in config.scenarios:
        for variant in variant_names(config, scenario):
            if scenario == "drip":
                cells.append(Cell.make(
                    "defense-ablation",
                    scenario=scenario,
                    variant=variant,
                    arrival=config.arrival,
                    backend=config.backend,
                    adversary="escalate",
                    n_base_keys=config.n_base_keys,
                    n_ticks=config.n_ticks,
                    rate=config.rate,
                    poison_percentage=config.poison_percentage,
                    insert_fraction=config.insert_fraction,
                    rebuild_threshold=config.rebuild_threshold,
                    model_size=config.model_size,
                    target_amplification=config.target_amplification,
                    seed=config.seed))
            else:
                cells.append(Cell.make(
                    "defense-ablation",
                    scenario=scenario,
                    variant=variant,
                    backend=config.backend,
                    adversary="concentrated",
                    tenant_layout=config.tenant_layout,
                    n_shards=config.n_shards,
                    n_tenants=config.n_tenants,
                    tenant_skew=config.tenant_skew,
                    n_base_keys=config.n_base_keys,
                    n_ops=config.n_ops,
                    tick_ops=config.tick_ops,
                    poison_percentage=config.poison_percentage,
                    insert_fraction=config.insert_fraction,
                    rebuild_threshold=config.rebuild_threshold,
                    model_size=config.model_size,
                    slo_p95=config.slo_p95,
                    slo_tier_factor=config.slo_tier_factor,
                    max_shards=config.max_shards,
                    transport=config.transport,
                    replicas=config.replicas,
                    seed=config.seed))
    return cells


def _enabled_set(scenario: str,
                 p: dict[str, Any]) -> frozenset[str]:
    """The armed components of one cell, from its variant name.

    The enabled set always derives from the *full* applicable list —
    the ``--components`` filter drops one-off cells from the plan but
    never disarms anything in the cells that do run.
    """
    names = tuple(spec.name for spec in applicable_components(
        scenario, p.get("transport", "inproc"),
        p.get("replicas", 1)))
    variant = p["variant"]
    if variant == "baseline":
        return frozenset(names)
    if variant == "floor":
        return frozenset()
    removed = variant[len("no-"):]
    if not variant.startswith("no-") or removed not in names:
        raise ValueError(
            f"variant must be 'baseline', 'floor', or "
            f"'no-<component>' applicable to {scenario!r}, got "
            f"{variant!r}")
    return frozenset(name for name in names if name != removed)


def _budget(p: dict[str, Any]) -> int:
    return max(1, int(p["n_base_keys"] * p["poison_percentage"]
                      / 100.0))


def _run_drip_cell(p: dict[str, Any]) -> CellOutput:
    """The closed-loop escalation duel with the chosen layers armed."""
    enabled = _enabled_set("drip", p)
    arrival = make_arrival(p["arrival"], rate=p["rate"],
                           seed=p["seed"])
    tick_sizes = arrival.tick_sizes(p["n_ticks"])
    spec = drip_spec_for(p, n_ops=int(tick_sizes.sum()))
    trace = generate_rate_driven_trace(spec, tick_sizes)

    budget = _budget(p)
    n_models = max(1, p["n_base_keys"] // p["model_size"])
    pool = np.asarray(poison_rmi(
        KeySet(trace.base_keys, domain=spec.domain()), n_models,
        RMIAttackerCapability(
            poisoning_percentage=p["poison_percentage"]),
    ).poison_keys, dtype=np.int64)
    adversary = make_adversary(
        p["adversary"], trace.base_keys, spec.domain(), budget,
        p["seed"], pool=pool,
        target_amplification=p["target_amplification"])

    # The tuner carries both drip-side layers: keep_gain=0 turns the
    # armed screen into a pass-through (keep pinned at 1.0), boost=1
    # disables the churn-burst threshold deferral.  Neither armed ==
    # the fixed-defense floor, so the tuner drops out entirely.
    tuner = None
    if enabled & {"trim", "deferral"}:
        tuner = TrimAutoTuner(
            base_threshold=p["rebuild_threshold"],
            keep_deadband=DRIP_KEEP_DEADBAND,
            keep_gain=(DRIP_KEEP_GAIN if "trim" in enabled else 0.0),
            **({} if "deferral" in enabled else {"boost": 1.0}))

    build_args: dict[str, Any] = {}
    if p["backend"] in ("rmi", "dynamic"):
        build_args["model_size"] = p["model_size"]
    backend = make_backend(
        p["backend"], trace.base_keys,
        rebuild_threshold=p["rebuild_threshold"],
        quarantine_rejects=("quarantine" in enabled), **build_args)
    report = ServingSimulator(backend, trace, tick_sizes=tick_sizes,
                              adversary=adversary, tuner=tuner).run()

    result = report.to_dict()
    result.update({
        "scenario": p["scenario"],
        "variant": p["variant"],
        "budget": budget,
        "ablate_amplification": result["final_amplification"],
        "ablate_p95": result["p95"],
        "ablate_slo_violations": json_float(float("nan")),
    })
    return CellOutput(
        result=result,
        arrays={f"tick_{name}": series
                for name, series in report.series.items()})


def _compromise_faults(trace, spec, shard_map,
                       p: dict[str, Any]) -> tuple[FaultSpec, ...]:
    """The silent poisoned-replica doses against the victim's shard.

    Crafted against the victim tenant's sub-CDF and filtered to the
    compromised shard's range, split into one dose per early tick —
    the ``run_poisoned_replica_scenario`` recipe, parameterised by
    the cell.  Replica 0 absorbs them all; its peers never see them.
    """
    lo, hi = spec.tenant_ranges()[VICTIM_TENANT]
    victim_shard = int(shard_map.route(
        np.asarray([(lo + hi) // 2], dtype=np.int64))[0])
    crafted = ConcentratedClusterAdversary(
        trace.base_keys, spec.domain(), _budget(p), p["seed"],
        (lo, hi), model_size=p["model_size"])
    shard_lo, shard_hi = shard_map.shard_range(victim_shard)
    pool = crafted.pool[(crafted.pool >= shard_lo)
                        & (crafted.pool <= shard_hi)]
    parts = np.array_split(pool, len(COMPROMISE_TICKS))
    return tuple(
        FaultSpec(kind="poison", shard=victim_shard, replica=0,
                  tick=tick, until=tick,
                  keys=tuple(int(k) for k in part))
        for tick, part in zip(COMPROMISE_TICKS, parts) if part.size)


def _run_cluster_cell(p: dict[str, Any]) -> CellOutput:
    """The sharded victim scenario with the chosen layers armed."""
    enabled = _enabled_set("cluster", p)
    spec = cluster_spec_for(p)
    trace = generate_trace(spec)
    shard_map = ShardMap.balanced(trace.base_keys, p["n_shards"],
                                  spec.domain())

    build_args: dict[str, Any] = {
        "quarantine_rejects": "quarantine" in enabled}
    if p["backend"] in ("rmi", "dynamic"):
        build_args["model_size"] = p["model_size"]
    router_kwargs: dict[str, Any] = dict(
        rebuild_threshold=p["rebuild_threshold"],
        migration_rescreen="migration_rescreen" in enabled,
        **build_args)
    if p["transport"] == "process":
        # Replication-scale cells carry the silent compromise in
        # every variant, so the quorum one-off measures exactly what
        # quorum reads + the divergence detector absorb.
        faults = (_compromise_faults(trace, spec, shard_map, p)
                  if p["replicas"] >= 3 else ())
        router: ClusterRouter = TransportClusterRouter(
            shard_map, trace.base_keys, p["backend"],
            transport=(TransportConfig(faults=faults)
                       if faults else None),
            replicas=p["replicas"],
            read_mode=("quorum" if "quorum" in enabled
                       else "primary"),
            detect_divergence=("quorum" in enabled),
            **router_kwargs)
    else:
        router = ClusterRouter(shard_map, trace.base_keys,
                               p["backend"], **router_kwargs)

    budget = _budget(p)
    adversary = make_cluster_adversary(
        p["adversary"], trace.base_keys, spec.domain(), budget,
        p["seed"],
        victim_range=spec.tenant_ranges()[VICTIM_TENANT],
        model_size=p["model_size"])

    rebalancer = (Rebalancer(max_shards=p["max_shards"])
                  if "rebalancer" in enabled else None)
    defense = None
    if enabled & {"trim", "deferral", "slo_weighting"}:
        defense = SloWeightedDefense(
            spec.tenant_slos(),
            base_threshold=p["rebuild_threshold"],
            keep_deadband=DRIP_KEEP_DEADBAND,
            keep_gain=DRIP_KEEP_GAIN,
            trim="trim" in enabled,
            deferral="deferral" in enabled,
            slo_weighting="slo_weighting" in enabled)

    try:
        report = ClusterSimulator(router, trace,
                                  tick_ops=p["tick_ops"],
                                  adversary=adversary,
                                  rebalancer=rebalancer,
                                  defense=defense).run()
    finally:
        router.close()

    result = report.to_dict()
    result.update({
        "scenario": p["scenario"],
        "variant": p["variant"],
        "budget": budget,
        "ablate_amplification": json_float(
            report.final_tenant_amplification[VICTIM_TENANT]),
        "ablate_p95": json_float(
            report.final_tenant_p95[VICTIM_TENANT]),
        "ablate_slo_violations": json_float(
            report.tenant_slo_violation_fraction[VICTIM_TENANT]),
    })
    arrays = {f"tick_{name}": series
              for name, series in report.series.items()}
    arrays.update(report.tenant_series)
    arrays.update(report.shard_series)
    return CellOutput(result=result, arrays=arrays)


def run_ablate_cell(cell: Cell) -> CellOutput:
    """Replay one ablation cell; keep the scenario's full series.

    Deterministic in the cell parameters alone — the enabled set is a
    pure function of the variant name, so resumed and fanned-out runs
    replay identical stacks.
    """
    p = cell.params_dict
    if p["scenario"] == "drip":
        return _run_drip_cell(p)
    return _run_cluster_cell(p)


@dataclass(frozen=True)
class AblateRow:
    """One grid point's victim-facing summary."""

    scenario: str
    variant: str
    amplification: float
    p95: float
    slo_violations: float  # NaN on the single-tenant drip scenario
    retrains: int
    injected_poison: int


@dataclass(frozen=True)
class AblateResult:
    """All rows of the grid, in plan order."""

    config: AblateConfig
    rows: tuple[AblateRow, ...]

    def row(self, **criteria: Any) -> AblateRow:
        """The unique row matching all ``field=value`` criteria."""
        hits = [r for r in self.rows
                if all(getattr(r, k) == v
                       for k, v in criteria.items())]
        if len(hits) != 1:
            raise KeyError(
                f"{criteria} matches {len(hits)} rows, expected 1")
        return hits[0]

    def _metrics(self, scenario: str, variant: str) -> MetricSummary:
        r = self.row(scenario=scenario, variant=variant)
        return MetricSummary(amplification=r.amplification,
                             p95=r.p95,
                             slo_violations=r.slo_violations)

    def reports(self) -> tuple[AblationReport, ...]:
        """One ranked importance report per scenario."""
        out = []
        for scenario in self.config.scenarios:
            one_offs = [
                (spec.name, spec.title,
                 self._metrics(scenario, f"no-{spec.name}"))
                for spec in applicable_components(
                    scenario, self.config.transport,
                    self.config.replicas, self.config.components)]
            out.append(build_report(
                scenario,
                baseline=self._metrics(scenario, "baseline"),
                floor=self._metrics(scenario, "floor"),
                one_offs=one_offs))
        return tuple(out)

    def format(self) -> str:
        """Per-scenario cell tables, then the ranked importance."""
        blocks = []
        for scenario in self.config.scenarios:
            rows = [r for r in self.rows if r.scenario == scenario]
            if not rows:
                continue
            title = (f"ablation grid: {scenario} scenario "
                     f"({len(rows)} cells, "
                     f"{self.config.poison_percentage:g}% budget, "
                     f"seed {self.config.seed})")
            body = [[r.variant, format_ratio(r.amplification),
                     f"{r.p95:.1f}",
                     ("-" if math.isnan(r.slo_violations)
                      else f"{r.slo_violations:.0%}"),
                     r.retrains, r.injected_poison]
                    for r in rows]
            table = render_table(
                ["variant", "amplif.", "p95", "slo viol",
                 "retrains", "injected"], body)
            blocks.append(f"{section(title)}\n{table}")
        blocks.append(format_reports(list(self.reports())))
        return "\n\n".join(blocks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload).

        The ``ablation`` block is the declared result section —
        see ``repro.contracts.validate_ablation_section``.
        """
        return {
            "seed": self.config.seed,
            "scenarios": list(self.config.scenarios),
            "components": (None if self.config.components is None
                           else list(self.config.components)),
            "backend": self.config.backend,
            "n_base_keys": self.config.n_base_keys,
            "poison_percentage": self.config.poison_percentage,
            "transport": self.config.transport,
            "replicas": self.config.replicas,
            "cells": [
                {
                    "scenario": r.scenario,
                    "variant": r.variant,
                    "amplification": json_float(r.amplification),
                    "p95": json_float(r.p95),
                    "slo_violations": json_float(r.slo_violations),
                    "retrains": r.retrains,
                    "injected_poison": r.injected_poison,
                }
                for r in self.rows
            ],
            "ablation": to_section(list(self.reports())),
        }


def run(config: AblateConfig | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False, executor: str = "process",
        progress=None) -> AblateResult:
    """Run the whole grid; identical results for any jobs/executor."""
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "defense-ablation",
            "config": {
                "scenarios": list(config.scenarios),
                "components": (None if config.components is None
                               else list(config.components)),
                "backend": config.backend,
                "n_base_keys": config.n_base_keys,
                "poison_percentage": config.poison_percentage,
                "transport": config.transport,
                "replicas": config.replicas,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_ablate_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    plan = plan_cells(config)
    rows = []
    for cell, outcome in zip(plan, engine.run(plan)):
        p = cell.params_dict
        rows.append(AblateRow(
            scenario=p["scenario"],
            variant=p["variant"],
            amplification=parse_json_float(
                outcome["ablate_amplification"]),
            p95=parse_json_float(outcome["ablate_p95"]),
            slo_violations=parse_json_float(
                outcome["ablate_slo_violations"]),
            retrains=outcome["retrains"],
            injected_poison=outcome["injected_poison"]))
    return AblateResult(config=config, rows=tuple(rows))
