"""repro.ablate — leave-one-out defense-ablation grids.

Which defense layer is actually load-bearing?  The repo grew a stack
of them — TRIM screening, the quarantine side list, retrain deferral,
SLO-weighted per-shard tuning, the rebalancer, migration
re-screening, and (over replication) quorum reads with divergence
detection — and every committed experiment runs them together.  This
package measures each layer's marginal value the standard ML-paper
way: run the all-on baseline, remove exactly one component at a
time, run the all-off floor, and rank the components by how much
victim damage their removal re-admits.

* :mod:`~repro.ablate.components` — the declarative registry of
  toggleable components and their per-scenario applicability;
* :mod:`~repro.ablate.plan` — the engine-backed leave-one-out grid
  (baseline / one-offs / floor) over the committed drip and cluster
  scenarios;
* :mod:`~repro.ablate.importance` — metric deltas, harmful flags,
  and the deterministic importance ranking.

CLI: ``python -m repro.experiments ablate --quick``.
"""

from .components import (
    COMPONENT_NAMES,
    COMPONENTS,
    SCENARIOS,
    ComponentSpec,
    applicable_components,
    component,
)
from .importance import (
    HARM_TOLERANCE,
    AblationReport,
    ComponentImportance,
    MetricSummary,
    build_report,
    format_reports,
    rank_components,
    to_section,
)
from .plan import (
    AblateConfig,
    AblateResult,
    AblateRow,
    full_config,
    plan_cells,
    quick_config,
    run,
    run_ablate_cell,
    variant_names,
)

__all__ = [
    "AblateConfig",
    "AblateResult",
    "AblateRow",
    "AblationReport",
    "COMPONENTS",
    "COMPONENT_NAMES",
    "ComponentImportance",
    "ComponentSpec",
    "HARM_TOLERANCE",
    "MetricSummary",
    "SCENARIOS",
    "applicable_components",
    "build_report",
    "component",
    "format_reports",
    "full_config",
    "plan_cells",
    "quick_config",
    "rank_components",
    "run",
    "run_ablate_cell",
    "to_section",
    "variant_names",
]
