"""The declarative registry of toggleable defense components.

Every defense the repo composed across PRs 4-8 is named here once,
with the scenarios it applies to and (for the replication layer) the
transport it requires.  The leave-one-out plan builder in
:mod:`repro.ablate.plan` consumes nothing but this registry: adding a
new defense row makes it an ablation axis automatically, which is the
whole point of the subsystem — every future scenario answers "which
defense matters here" without hand-built grids.

Each :class:`ComponentSpec` maps onto an existing config seam; no
component introduces new behaviour, only the ability to *remove* one
layer while the rest of the stack stays exactly as the baseline runs
it:

========================  ============================================
component                 seam it toggles
========================  ============================================
``trim``                  TRIM keep-fraction screening
                          (:class:`~repro.workload.closedloop.TrimAutoTuner`
                          keep rule; ``SloWeightedDefense(trim=...)``)
``quarantine``            the quarantine side list
                          (``quarantine_rejects`` on the backends and
                          :class:`~repro.index.dynamic.DynamicLearnedIndex`)
``deferral``              rebuild-threshold deferral (the tuner's
                          churn-burst boost; ``SloWeightedDefense
                          (deferral=...)``)
``slo_weighting``         SLO-pressure weighting of per-shard tuning
                          (``SloWeightedDefense(slo_weighting=...)``)
``rebalancer``            split/merge topology management
                          (:class:`~repro.cluster.rebalance.Rebalancer`)
``migration_rescreen``    migration rebuilds re-screen their training
                          set (``ClusterRouter(migration_rescreen=...)``
                          / ``sanitize_initial``)
``quorum``                quorum reads + divergence detection
                          (:class:`~repro.cluster.replication.TransportClusterRouter`
                          ``read_mode``/``detect_divergence``)
========================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COMPONENTS",
    "COMPONENT_NAMES",
    "ComponentSpec",
    "SCENARIOS",
    "applicable_components",
    "component",
]

#: The scenarios the grid knows: the closed-loop drip-escalation duel
#: and the sharded multi-tenant victim scenario.
SCENARIOS = ("drip", "cluster")


@dataclass(frozen=True)
class ComponentSpec:
    """One toggleable defense layer.

    ``scenarios`` lists where the component exists at all;
    ``min_replicas`` > 1 marks a replication-layer component that is
    only meaningful when the cluster scenario runs over the process
    transport with at least that many replicas per shard.
    """

    name: str
    title: str
    scenarios: tuple[str, ...]
    description: str
    min_replicas: int = 1

    def applicable(self, scenario: str, transport: str = "inproc",
                   replicas: int = 1) -> bool:
        """Whether this component is a live axis of ``scenario``."""
        if scenario not in self.scenarios:
            return False
        if self.min_replicas > 1:
            return (transport == "process"
                    and replicas >= self.min_replicas)
        return True

    def requires(self) -> str:
        """Human-readable applicability tag for the registry table."""
        if self.min_replicas > 1:
            return (f"--transport process "
                    f"--replicas>={self.min_replicas}")
        return "-"


COMPONENTS: tuple[ComponentSpec, ...] = (
    ComponentSpec(
        name="trim",
        title="TRIM screen",
        scenarios=("drip", "cluster"),
        description="keep-fraction screening of every retrain's "
                    "training set"),
    ComponentSpec(
        name="quarantine",
        title="quarantine side list",
        scenarios=("drip", "cluster"),
        description="TRIM rejects served from a binary-searched side "
                    "list instead of being dropped"),
    ComponentSpec(
        name="deferral",
        title="rebuild-threshold deferral",
        scenarios=("drip", "cluster"),
        description="churn-burst retrain deferral via the tuner's "
                    "threshold boost"),
    ComponentSpec(
        name="slo_weighting",
        title="SLO-weighted defense",
        scenarios=("cluster",),
        description="per-shard tuning pressure from tenant SLO "
                    "ratios"),
    ComponentSpec(
        name="rebalancer",
        title="rebalancer",
        scenarios=("cluster",),
        description="hot-shard split / cold-pair merge topology "
                    "management"),
    ComponentSpec(
        name="migration_rescreen",
        title="migration re-screening",
        scenarios=("cluster",),
        description="migration rebuilds re-screen their training set "
                    "(sanitize_initial)"),
    ComponentSpec(
        name="quorum",
        title="quorum reads + divergence detector",
        scenarios=("cluster",),
        description="replica quorum reads with error-bound "
                    "divergence detection",
        min_replicas=3),
)

COMPONENT_NAMES: tuple[str, ...] = tuple(
    spec.name for spec in COMPONENTS)

if len(set(COMPONENT_NAMES)) != len(COMPONENT_NAMES):
    raise AssertionError("component names must be unique")


def component(name: str) -> ComponentSpec:
    """Look up one registered component by name."""
    for spec in COMPONENTS:
        if spec.name == name:
            return spec
    raise ValueError(
        f"unknown defense component {name!r}; known: "
        f"{list(COMPONENT_NAMES)}")


def applicable_components(scenario: str, transport: str = "inproc",
                          replicas: int = 1,
                          components: "tuple[str, ...] | None" = None,
                          ) -> tuple[ComponentSpec, ...]:
    """The registry rows live in ``scenario``, in registry order.

    ``components`` optionally restricts the result to a named subset
    (the ``--components`` CLI filter); unknown names raise through
    :func:`component` so a typo fails before any cell runs.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; known: {list(SCENARIOS)}")
    if components is not None:
        for name in components:
            component(name)  # raises on unknown names
    return tuple(
        spec for spec in COMPONENTS
        if spec.applicable(scenario, transport, replicas)
        and (components is None or spec.name in components))
