"""Leave-one-out importance: metric deltas, ranks, harmful flags.

The grid in :mod:`repro.ablate.plan` runs an all-on **baseline**, one
**one-off** cell per applicable component, and an all-off **floor**.
This module turns those observed metrics into the ranked
per-component report:

* a component's **score** is the victim-amplification delta its
  removal causes (``one_off - baseline``): how much attack damage
  the component was absorbing.  Positive = protective, the larger
  the more load-bearing;
* ``p95_delta`` and ``slo_delta`` are the same removal deltas on the
  victim-facing p95 probe count and the SLO-violation fraction
  (NaN where a scenario has no SLO notion, e.g. the single-tenant
  drip loop);
* a component is flagged **harmful** when removing it *improved*
  amplification by more than :data:`HARM_TOLERANCE` — the screen
  that quarantines more legitimate neighbours than poison;
* the **rank** is deterministic: descending score, then descending
  p95 delta, then component name — so equal measurements always
  report in the same order.

Everything here is pure arithmetic over floats the cells already
emitted; no cell re-runs, no randomness, no clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..experiments.report import (
    DuelRow,
    format_ratio,
    render_duel,
    render_table,
    section,
)
from ..io import json_float

__all__ = [
    "HARM_TOLERANCE",
    "AblationReport",
    "ComponentImportance",
    "MetricSummary",
    "build_report",
    "format_reports",
    "rank_components",
    "to_section",
]

#: Amplification improvement a removal must show before the removed
#: component is flagged harmful.  Deterministic replays make the
#: deltas exact, but a literal-zero cutoff would let a measurement
#: at the resolution floor flip the flag; half a percent of clean
#: latency is the smallest effect worth reporting.
HARM_TOLERANCE = 0.005


@dataclass(frozen=True)
class MetricSummary:
    """The victim-facing metrics of one grid cell."""

    amplification: float
    p95: float
    slo_violations: float  # NaN where the scenario has no SLO

    def to_metrics(self) -> dict:
        """JSON-safe dict under the declared metric keys."""
        metrics = {
            "amplification": json_float(self.amplification),
            "p95": json_float(self.p95),
            "slo_violations": json_float(self.slo_violations),
        }
        return metrics


@dataclass(frozen=True)
class ComponentImportance:
    """One component's leave-one-out deltas and rank."""

    component: str
    title: str
    rank: int
    score: float
    amplification_delta: float
    p95_delta: float
    slo_delta: float
    harmful: bool


def _delta(one_off: float, baseline: float) -> float:
    """Removal delta; NaN when either side is unobserved."""
    if math.isnan(one_off) or math.isnan(baseline):
        return float("nan")
    return float(one_off) - float(baseline)


def _rank_key(entry: ComponentImportance) -> tuple:
    """Descending score, then descending p95 delta, then name.

    NaN sorts like negative infinity in both numeric keys, so an
    unobserved delta can never outrank a measured one and the order
    stays total (deterministic tie-break on the component name).
    """
    score = entry.score if not math.isnan(entry.score) \
        else float("-inf")
    p95 = entry.p95_delta if not math.isnan(entry.p95_delta) \
        else float("-inf")
    return (-score, -p95, entry.component)


def rank_components(entries: "list[ComponentImportance]",
                    ) -> tuple[ComponentImportance, ...]:
    """Assign 1-based ranks in the deterministic report order."""
    ordered = sorted(entries, key=_rank_key)
    return tuple(
        ComponentImportance(
            component=e.component, title=e.title, rank=i + 1,
            score=e.score, amplification_delta=e.amplification_delta,
            p95_delta=e.p95_delta, slo_delta=e.slo_delta,
            harmful=e.harmful)
        for i, e in enumerate(ordered))


def build_report(scenario: str, baseline: MetricSummary,
                 floor: MetricSummary,
                 one_offs: "list[tuple[str, str, MetricSummary]]",
                 ) -> "AblationReport":
    """Deltas + ranks from (name, title, metrics) one-off cells."""
    entries = []
    for name, title, metrics in one_offs:
        score = _delta(metrics.amplification, baseline.amplification)
        entries.append(ComponentImportance(
            component=name, title=title, rank=0, score=score,
            amplification_delta=score,
            p95_delta=_delta(metrics.p95, baseline.p95),
            slo_delta=_delta(metrics.slo_violations,
                             baseline.slo_violations),
            harmful=(not math.isnan(score)
                     and score < -HARM_TOLERANCE)))
    return AblationReport(scenario=scenario, baseline=baseline,
                          floor=floor,
                          components=rank_components(entries))


@dataclass(frozen=True)
class AblationReport:
    """One scenario's ranked leave-one-out result."""

    scenario: str
    baseline: MetricSummary
    floor: MetricSummary
    components: tuple[ComponentImportance, ...]

    def component(self, name: str) -> ComponentImportance:
        """The named component's entry (KeyError when absent)."""
        for entry in self.components:
            if entry.component == name:
                return entry
        raise KeyError(
            f"component {name!r} not in the {self.scenario} report")

    def stack_protects(self) -> float:
        """Floor-minus-baseline amplification: what all-on buys."""
        return _delta(self.floor.amplification,
                      self.baseline.amplification)

    def duel_rows(self) -> list[DuelRow]:
        """One duel row per component: removal damage vs baseline."""
        return [DuelRow(group=(self.scenario, entry.component),
                        gap=entry.score, recovered=None)
                for entry in self.components]

    def format(self) -> str:
        """The ranked importance table of this scenario."""
        title = (f"defense ablation: {self.scenario} scenario "
                 f"(baseline amp "
                 f"{format_ratio(self.baseline.amplification)}, "
                 f"floor amp "
                 f"{format_ratio(self.floor.amplification)})")
        body = []
        for entry in self.components:
            slo = ("-" if math.isnan(entry.slo_delta)
                   else f"{entry.slo_delta:+.0%}")
            body.append([
                entry.rank, entry.component,
                f"{entry.score:+.3f}",
                f"{entry.p95_delta:+.1f}", slo,
                ("harmful" if entry.harmful else "-")])
        table = render_table(
            ["rank", "component", "amp delta", "p95 delta",
             "slo delta", "flag"], body)
        return f"{section(title)}\n{table}"


def format_reports(reports: "list[AblationReport]") -> str:
    """All scenarios' tables plus the shared duel rendering."""
    blocks = [report.format() for report in reports]
    duel_rows = [row for report in reports
                 for row in report.duel_rows()]
    duel = render_duel(
        "duel: component removed vs all-on baseline "
        "(victim amplification delta)",
        ["scenario", "component"], duel_rows,
        gap_header="removal cost")
    if duel:
        blocks.append(duel)
    return "\n\n".join(blocks)


def to_section(reports: "list[AblationReport]") -> dict:
    """The ``ablation`` result section, under the declared keys.

    The key sets are declared in :mod:`repro.contracts`
    (``ABLATION_*``) and cross-checked by the REP007 linter rule on
    this writer and on the gallery reader.
    """
    scenarios = []
    for report in reports:
        rows = []
        for entry in report.components:
            row = {
                "component": entry.component,
                "rank": entry.rank,
                "score": json_float(entry.score),
                "amplification_delta": json_float(
                    entry.amplification_delta),
                "p95_delta": json_float(entry.p95_delta),
                "slo_delta": json_float(entry.slo_delta),
                "harmful": entry.harmful,
            }
            rows.append(row)
        block = {
            "scenario": report.scenario,
            "baseline": report.baseline.to_metrics(),
            "floor": report.floor.to_metrics(),
            "components": rows,
        }
        scenarios.append(block)
    ablation = {"scenarios": scenarios}
    return ablation
