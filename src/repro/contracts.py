"""Declarative wire and payload contracts, shared by writers,
readers, and the :mod:`repro.analysis` linter.

Every byte- or key-level agreement between a producer and a consumer
in this repo used to live as string literals duplicated at both ends:
the ``repro.experiments.result/v2`` document keys (written by
:func:`repro.experiments.__main__._write_result`, read back by
:mod:`repro.observe.gallery` and the CI parity scripts), the shard
frame protocol header and message codes
(:mod:`repro.cluster.transport`), and the ``REVB`` columnar event
batch header (:mod:`repro.workload.columnar`).  History shows those
literals drift silently — PR 7's fan-out race was only visible
because a reader happened to crash.  This module is the single
declaration:

* the **runtime** validates against it at load/decode time — loading
  a result tree or decoding a frame with unknown or missing keys
  raises :class:`ContractViolation` (a ``ValueError``) naming the
  offending keys;
* the **linter**'s REP007 rule cross-checks the string literals each
  writer emits and each reader consumes against the same
  declarations, so a drifted key fails CI before it fails a replay.

Nothing here imports numpy — the contract layer must stay importable
from the lint CLI and from worker processes alike.
"""

from __future__ import annotations

import struct

__all__ = [
    "ABLATION_COMPONENT_KEYS",
    "ABLATION_KEYS",
    "ABLATION_METRIC_KEYS",
    "ABLATION_SCENARIO_KEYS",
    "ARTIFACT_KEYS",
    "ContractViolation",
    "FRAME",
    "MSG_DELETE",
    "MSG_DIGEST",
    "MSG_INSERT",
    "MSG_LIVE_KEYS",
    "MSG_LOOKUP",
    "MSG_RANGE",
    "MSG_REBUILD",
    "MSG_REPLAY",
    "MSG_SET_KEEP",
    "MSG_SET_THRESHOLD",
    "MSG_SHUTDOWN",
    "MSG_STATS",
    "PROTOCOL_VERSION",
    "REPLY_CODES",
    "REPLY_ERR",
    "REPLY_OK",
    "REQUEST_CODES",
    "RESULT_OPTIONAL_KEYS",
    "RESULT_REQUIRED_KEYS",
    "RESULT_SCHEMA",
    "WIRE_HEADER",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "validate_ablation_section",
    "validate_artifact_entry",
    "validate_result",
]


class ContractViolation(ValueError):
    """A payload, frame, or document broke a declared contract.

    Subclasses ``ValueError`` so pre-existing defensive ``except
    ValueError`` readers keep working; raised with the offending
    key/field names so the failure is actionable without a debugger.
    """


# ---------------------------------------------------------------------
# repro.experiments.result/v2 — the sweep result document
# ---------------------------------------------------------------------
RESULT_SCHEMA = "repro.experiments.result/v2"

#: Top-level keys every result/v2 document must carry.
RESULT_REQUIRED_KEYS = (
    "schema",
    "target",
    "profile",
    "jobs",
    "executor",
    "result",
    "artifacts",
)

#: Top-level keys a result/v2 document may carry.  ``instrument`` is
#: the opt-in observability profile — wall-clock, never compared by
#: the jobs-parity gates.
RESULT_OPTIONAL_KEYS = ("instrument",)

#: Keys of one entry in the ``artifacts`` manifest.
ARTIFACT_KEYS = ("file", "arrays")


def validate_artifact_entry(entry: object,
                            where: str = "artifacts entry") -> dict:
    """Check one manifest entry; return it or raise loudly."""
    if not isinstance(entry, dict):
        raise ContractViolation(
            f"{where}: expected an object, got "
            f"{type(entry).__name__}")
    missing = [k for k in ARTIFACT_KEYS if k not in entry]
    unknown = [k for k in entry if k not in ARTIFACT_KEYS]
    if missing or unknown:
        raise ContractViolation(
            f"{where}: missing keys {missing}, unknown keys "
            f"{unknown}; declared keys are {list(ARTIFACT_KEYS)}")
    return entry


# The ``ablation`` result section (the ``ablate`` target's summary).
# Written by ``repro.ablate.importance.to_section``, read back by the
# gallery's importance-bar renderer; REP007 cross-checks both ends.

#: Keys of the ``ablation`` block inside a result payload.
ABLATION_KEYS = ("scenarios",)

#: Keys of one scenario entry under ``ablation.scenarios``.
ABLATION_SCENARIO_KEYS = ("scenario", "baseline", "floor",
                          "components")

#: Keys of the metric summaries (``baseline`` / ``floor``).
ABLATION_METRIC_KEYS = ("amplification", "p95", "slo_violations")

#: Keys of one ranked component entry.
ABLATION_COMPONENT_KEYS = ("component", "rank", "score",
                           "amplification_delta", "p95_delta",
                           "slo_delta", "harmful")


def _check_keys(obj: object, keys: tuple[str, ...],
                where: str) -> dict:
    """Exact-key-set check shared by the ablation validators."""
    if not isinstance(obj, dict):
        raise ContractViolation(
            f"{where}: expected an object, got "
            f"{type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    unknown = [k for k in obj if k not in keys]
    if missing or unknown:
        raise ContractViolation(
            f"{where}: missing keys {missing}, unknown keys "
            f"{unknown}; declared keys are {list(keys)}")
    return obj


def validate_ablation_section(block: object,
                              where: str = "ablation") -> dict:
    """Check an ``ablation`` result section; return it or raise.

    Walks the whole tree — scenario entries, their metric summaries,
    and every ranked component row — so a drifted key anywhere in the
    section fails at write/load time, not at the first reader that
    happens to touch it.
    """
    _check_keys(block, ABLATION_KEYS, where)
    scenarios = block["scenarios"]
    if not isinstance(scenarios, list):
        raise ContractViolation(
            f"{where}: 'scenarios' must be a list, got "
            f"{type(scenarios).__name__}")
    for i, scenario_entry in enumerate(scenarios):
        at = f"{where}.scenarios[{i}]"
        _check_keys(scenario_entry, ABLATION_SCENARIO_KEYS, at)
        _check_keys(scenario_entry["baseline"], ABLATION_METRIC_KEYS,
                    f"{at}.baseline")
        _check_keys(scenario_entry["floor"], ABLATION_METRIC_KEYS,
                    f"{at}.floor")
        rows = scenario_entry["components"]
        if not isinstance(rows, list):
            raise ContractViolation(
                f"{at}: 'components' must be a list, got "
                f"{type(rows).__name__}")
        for j, component_entry in enumerate(rows):
            _check_keys(component_entry, ABLATION_COMPONENT_KEYS,
                        f"{at}.components[{j}]")
    return block


def validate_result(payload: object) -> dict:
    """Validate a result/v2 document tree; return it or raise.

    Both ends call this: the CLI writer immediately before
    ``result.json`` is saved, and every reader (the gallery renderer,
    tests, CI scripts) immediately after loading — so a key added on
    one side only fails at the first run, not at the first consumer
    that happens to touch it.
    """
    if not isinstance(payload, dict):
        raise ContractViolation(
            f"result document: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != RESULT_SCHEMA:
        raise ContractViolation(
            f"result document schema {schema!r} != declared "
            f"{RESULT_SCHEMA!r}")
    allowed = set(RESULT_REQUIRED_KEYS) | set(RESULT_OPTIONAL_KEYS)
    missing = [k for k in RESULT_REQUIRED_KEYS if k not in payload]
    unknown = [k for k in payload if k not in allowed]
    if missing or unknown:
        raise ContractViolation(
            f"result document: missing keys {missing}, unknown keys "
            f"{unknown}; declared keys are "
            f"{sorted(allowed)}")
    artifacts = payload["artifacts"]
    if not isinstance(artifacts, list):
        raise ContractViolation(
            f"result document: 'artifacts' must be a list, got "
            f"{type(artifacts).__name__}")
    for i, entry in enumerate(artifacts):
        validate_artifact_entry(entry, where=f"artifacts[{i}]")
    result = payload["result"]
    if isinstance(result, dict) and "ablation" in result:
        validate_ablation_section(result["ablation"],
                                  where="result.ablation")
    return payload


# ---------------------------------------------------------------------
# Shard frame protocol (repro.cluster.transport)
# ---------------------------------------------------------------------
#: Version byte carried by every frame (and by the build spec).  Bump
#: on any message-layout change; both sides reject a mismatch.
PROTOCOL_VERSION = 1

#: Frame header: little-endian ``version(u8) code(u8) seq(u64)``.
FRAME = struct.Struct("<BBQ")

# Request codes — every one must have a worker dispatch arm and a
# client wrapper; REP007 cross-checks both directions.
MSG_REPLAY = 1       # body: encoded event batch -> found + probes
MSG_LOOKUP = 2       # body: i64 keys            -> found + probes
MSG_INSERT = 3       # body: i64 keys            -> ()
MSG_DELETE = 4       # body: i64 keys            -> ()
MSG_RANGE = 5        # body: (lo, hi)            -> i64 cost
MSG_STATS = 6        # body: ()                  -> WorkerStats
MSG_LIVE_KEYS = 7    # body: ()                  -> i64 keys
MSG_SET_KEEP = 8     # body: f64 (NaN = None)    -> ()
MSG_SET_THRESHOLD = 9  # body: f64               -> ()
MSG_REBUILD = 10     # body: ()                  -> ()
MSG_DIGEST = 11      # body: ()                  -> utf-8 digest
MSG_SHUTDOWN = 12    # body: ()                  -> () then exit

REQUEST_CODES = {
    "MSG_REPLAY": MSG_REPLAY,
    "MSG_LOOKUP": MSG_LOOKUP,
    "MSG_INSERT": MSG_INSERT,
    "MSG_DELETE": MSG_DELETE,
    "MSG_RANGE": MSG_RANGE,
    "MSG_STATS": MSG_STATS,
    "MSG_LIVE_KEYS": MSG_LIVE_KEYS,
    "MSG_SET_KEEP": MSG_SET_KEEP,
    "MSG_SET_THRESHOLD": MSG_SET_THRESHOLD,
    "MSG_REBUILD": MSG_REBUILD,
    "MSG_DIGEST": MSG_DIGEST,
    "MSG_SHUTDOWN": MSG_SHUTDOWN,
}

# Reply codes.
REPLY_OK = 100
REPLY_ERR = 101      # body: utf-8 "<Type>: <message>"

REPLY_CODES = {
    "REPLY_OK": REPLY_OK,
    "REPLY_ERR": REPLY_ERR,
}

if len(set(REQUEST_CODES.values())) != len(REQUEST_CODES) or \
        set(REQUEST_CODES.values()) & set(REPLY_CODES.values()):
    raise AssertionError("frame message codes must be unique")


# ---------------------------------------------------------------------
# REVB columnar event batch (repro.workload.columnar)
# ---------------------------------------------------------------------
#: Wire format of a serialized event batch (the cross-process unit of
#: ``ServingBackend.replay_ops``): a little-endian header
#: ``magic(4s) version(u8) pad(3) count(u64)`` followed by the three
#: columns as raw bytes — kinds as ``int8``, keys and aux as
#: ``int64``.  Bump :data:`WIRE_VERSION` on any layout change; decode
#: rejects mismatched versions so a stale worker fails loudly instead
#: of misreading columns.
WIRE_MAGIC = b"REVB"
WIRE_VERSION = 1
WIRE_HEADER = struct.Struct("<4sB3xQ")
