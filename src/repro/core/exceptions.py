"""Exceptions raised by the attack machinery."""

__all__ = ["KeySpaceExhausted"]


class KeySpaceExhausted(RuntimeError):
    """No unoccupied candidate key remains for a poisoning insertion.

    Raised when the (interior of the) key domain is fully occupied —
    the keyset is so dense that the requested poisoning budget cannot
    be placed.  Greedy drivers catch this and stop early.
    """
