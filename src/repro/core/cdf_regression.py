"""Closed-form linear regression on the empirical CDF (Theorem 1).

The learned-index building block under attack: given the key/rank
pairs ``(k_i, r_i)`` of a keyset, fit ``r ~ w*k + b`` by minimising
the mean squared error.  Theorem 1 of the paper gives the closed form

    w* = Cov(K, R) / Var(K)
    b* = mean(R) - w* * mean(K)
    L  = Var(R) - Cov(K, R)^2 / Var(K)

(the displayed loss in the paper has a typographical slip —
``-Cov^2/VarR + VarK`` — the algebra used by its own update equations,
and by this module, is ``VarR - Cov^2/VarK``).

All statistics are computed on *mean-centred* arrays: regression loss
is invariant under translating keys, and centring avoids catastrophic
cancellation when a second-stage RMI model regresses a narrow band of
very large keys (e.g. 100 keys near 10^9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet

__all__ = ["LinearModel", "RegressionFit", "fit_cdf_regression",
           "fit_ridge_cdf", "mse_of"]


@dataclass(frozen=True)
class LinearModel:
    """The two-parameter model ``position = slope * key + intercept``.

    The storage cost of exactly two floats (and a prediction cost of
    one multiply-add) is what makes linear second-stage models the
    backbone of performant RMIs — and what the paper argues cannot be
    hardened without giving up the LIS performance advantage.
    """

    slope: float
    intercept: float

    def predict(self, keys: np.ndarray | int | float) -> np.ndarray | float:
        """Predicted (fractional) rank(s) for the given key(s)."""
        return self.slope * np.asarray(keys, dtype=np.float64) + self.intercept


@dataclass(frozen=True)
class RegressionFit:
    """A fitted model together with its training loss.

    Attributes
    ----------
    model:
        The optimal :class:`LinearModel`.
    mse:
        The minimal mean squared error ``L`` of Theorem 1 — the value
        the poisoning attack maximises.
    n:
        Number of training points.
    """

    model: LinearModel
    mse: float
    n: int


def _fit_centred(keys: np.ndarray, ranks: np.ndarray) -> RegressionFit:
    keys = np.asarray(keys, dtype=np.float64)
    ranks = np.asarray(ranks, dtype=np.float64)
    n = keys.size
    if n == 0:
        raise ValueError("cannot fit a regression on an empty keyset")
    mean_k = keys.mean()
    mean_r = ranks.mean()
    dk = keys - mean_k
    dr = ranks - mean_r
    var_k = float(dk @ dk) / n
    var_r = float(dr @ dr) / n
    cov = float(dk @ dr) / n
    if var_k == 0.0:
        # Degenerate single-key (or constant-key) input: the best
        # horizontal line predicts the mean rank.
        model = LinearModel(0.0, mean_r)
        return RegressionFit(model, var_r, n)
    slope = cov / var_k
    intercept = mean_r - slope * mean_k
    mse = max(var_r - cov * cov / var_k, 0.0)
    return RegressionFit(LinearModel(slope, intercept), mse, n)


def fit_cdf_regression(keyset: KeySet | np.ndarray,
                       ranks: np.ndarray | None = None) -> RegressionFit:
    """Fit the optimal line through a CDF (Definition 1 / Theorem 1).

    Parameters
    ----------
    keyset:
        Either a :class:`KeySet` (its ranks ``1..n`` are used) or a
        raw sorted key array accompanied by explicit ``ranks``.
    ranks:
        Optional explicit rank array; required when ``keyset`` is a
        raw array, ignored otherwise.  RMI second-stage models pass
        *global* ranks here; the fitted loss is identical to using
        partition-local ranks because the intercept absorbs the shift.
    """
    if isinstance(keyset, KeySet):
        return _fit_centred(keyset.keys, keyset.ranks)
    if ranks is None:
        raise ValueError("raw key arrays require an explicit rank array")
    keys = np.asarray(keyset)
    if keys.shape != np.asarray(ranks).shape:
        raise ValueError("keys and ranks must have matching shapes")
    return _fit_centred(keys, np.asarray(ranks))


def fit_ridge_cdf(keyset: KeySet | np.ndarray, lam: float,
                  ranks: np.ndarray | None = None) -> RegressionFit:
    """L2-regularised linear regression on a CDF.

    Definition 1 with a ridge penalty ``lam * w^2`` on the (centred)
    slope: ``w* = Cov / (Var(K) + lam)``.  The paper deliberately
    studies the *non-regularised* model and remarks that "the impact
    of regularization is unclear in the context of LIS" (queries are
    training data); :func:`repro.experiments.ablations.run_ridge_ablation`
    measures whether shrinkage buys any poisoning robustness.  The
    reported ``mse`` is the *unpenalised* training error of the
    shrunken model — the quantity that drives lookup cost.

    ``lam`` is expressed in key-variance units (it is added directly
    to ``Var(K)``), so ``lam = Var(K)`` halves the slope.
    """
    if lam < 0.0:
        raise ValueError(f"ridge penalty must be non-negative: {lam}")
    if isinstance(keyset, KeySet):
        keys = keyset.keys.astype(np.float64)
        responses = keyset.ranks.astype(np.float64)
    else:
        if ranks is None:
            raise ValueError("raw key arrays require an explicit rank array")
        keys = np.asarray(keyset, dtype=np.float64)
        responses = np.asarray(ranks, dtype=np.float64)
    n = keys.size
    if n == 0:
        raise ValueError("cannot fit a regression on an empty keyset")
    mean_k = keys.mean()
    mean_r = responses.mean()
    dk = keys - mean_k
    dr = responses - mean_r
    var_k = float(dk @ dk) / n
    cov = float(dk @ dr) / n
    denominator = var_k + lam
    slope = cov / denominator if denominator > 0 else 0.0
    intercept = mean_r - slope * mean_k
    model = LinearModel(slope, intercept)
    return RegressionFit(model, mse_of(model, keys, responses), n)


def mse_of(model: LinearModel, keys: np.ndarray,
           ranks: np.ndarray) -> float:
    """Mean squared error of an arbitrary model on given CDF points.

    Used to evaluate a *stale* model (trained before poisoning) on the
    post-poisoning CDF, and by defenses that refit on subsets.
    """
    keys = np.asarray(keys, dtype=np.float64)
    ranks = np.asarray(ranks, dtype=np.float64)
    if keys.size == 0:
        raise ValueError("cannot evaluate a model on zero points")
    residuals = model.predict(keys) - ranks
    return float(residuals @ residuals) / keys.size
