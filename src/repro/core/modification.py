"""Modification poisoning: adversaries that *move* keys (Sec. VI).

The paper's future-work list includes adversaries "capable of removing
and modifying keys".  A modification is a delete + insert pair applied
to a key the adversary controls: the total key count is conserved, so
volume-based anomaly detection sees nothing at all — the stealthiest
of the three adversaries (insert / delete / modify).  It is also
*strong*: each move spends one budget unit on two perturbations
(remove a well-placed key, add a badly-placed one), so at equal budget
it matches or exceeds pure insertion in our experiments.

Greedy step: pick the (victim, destination) pair maximising the refit
loss.  Evaluating all ``n * m`` pairs is hopeless, but the same
structure that saved the insertion attack saves this one twice over:

1. for a *fixed* victim, the post-move loss as a function of the
   destination is the insertion-loss sequence of the (n-1)-key set,
   so only gap endpoints need evaluation (Theorem 2);
2. victims can be restricted to the top-k deletion candidates (the
   keys whose removal alone raises the loss most): the best move's
   victim overwhelmingly comes from this shortlist, and the optional
   exhaustive mode verifies it on small inputs.

Cost per greedy step: O(k * n) with the default shortlist of
``k = 8`` victims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from .cdf_regression import fit_cdf_regression
from .deletion import _deletion_losses_raw
from .single_point import _interior_endpoints_raw, _poisoning_losses_raw

__all__ = ["ModificationResult", "best_modification", "greedy_modify"]


@dataclass(frozen=True)
class ModificationResult:
    """Outcome of a greedy modification attack.

    Attributes
    ----------
    victims:
        Original key values, in move order.
    destinations:
        Where each victim was moved to (aligned with ``victims``).
    losses:
        Refit MSE after each move.
    loss_before:
        MSE on the unmodified keyset.
    """

    victims: np.ndarray
    destinations: np.ndarray
    losses: np.ndarray
    loss_before: float

    @property
    def n_moves(self) -> int:
        """Number of keys moved."""
        return int(self.victims.size)

    @property
    def loss_after(self) -> float:
        """Final refit MSE."""
        if self.losses.size == 0:
            return self.loss_before
        return float(self.losses[-1])

    @property
    def ratio_loss(self) -> float:
        """Post-modification MSE over clean MSE."""
        if self.loss_before == 0.0:
            return float("inf") if self.loss_after > 0.0 else 1.0
        return self.loss_after / self.loss_before


def _best_move_from(keys: np.ndarray, victim_index: int
                    ) -> tuple[int, float] | None:
    """Best destination (and loss) for moving one specific key."""
    remaining = np.delete(keys, victim_index)
    candidates = _interior_endpoints_raw(remaining)
    if candidates.size == 0:
        return None
    losses = _poisoning_losses_raw(remaining, candidates)
    best = int(np.argmax(losses))
    return int(candidates[best]), float(losses[best])


def best_modification(keyset: KeySet | np.ndarray,
                      shortlist: int = 8,
                      exhaustive: bool = False
                      ) -> tuple[int, int, float]:
    """The (victim, destination) move that maximises the refit loss.

    Parameters
    ----------
    keyset:
        The keys (``KeySet`` or raw sorted array), at least 4 keys.
    shortlist:
        How many top deletion candidates to consider as victims.
    exhaustive:
        Try *every* victim instead (O(n^2); small inputs, used by the
        tests to validate the shortlist heuristic).

    Returns
    -------
    (victim_key, destination_key, loss_after)
    """
    keys = keyset.keys if isinstance(keyset, KeySet) else np.asarray(
        keyset, dtype=np.int64)
    if keys.size < 4:
        raise ValueError("need at least 4 keys to attack by modification")

    if exhaustive:
        victim_indices = np.arange(keys.size)
    else:
        deletion_gain = _deletion_losses_raw(keys)
        k = min(shortlist, keys.size)
        victim_indices = np.argpartition(deletion_gain, -k)[-k:]

    best_tuple: tuple[int, int, float] | None = None
    for index in victim_indices:
        outcome = _best_move_from(keys, int(index))
        if outcome is None:
            continue
        destination, loss = outcome
        if destination == int(keys[index]):
            continue  # a no-op move
        if best_tuple is None or loss > best_tuple[2]:
            best_tuple = (int(keys[index]), destination, loss)
    if best_tuple is None:
        raise ValueError("no feasible modification (no interior gaps)")
    return best_tuple


def greedy_modify(keyset: KeySet, n_moves: int,
                  shortlist: int = 8) -> ModificationResult:
    """Greedy multi-move attack: apply the best move ``n_moves`` times.

    The key count is invariant throughout — this adversary is
    invisible to any defense that audits cardinality or volume.
    """
    if n_moves < 0:
        raise ValueError(f"move budget must be non-negative: {n_moves}")
    loss_before = fit_cdf_regression(keyset).mse
    keys = keyset.keys.copy()
    victims: list[int] = []
    destinations: list[int] = []
    losses: list[float] = []
    for _ in range(n_moves):
        if keys.size < 4:
            break
        try:
            victim, destination, loss = best_modification(
                keys, shortlist=shortlist)
        except ValueError:
            break
        victims.append(victim)
        destinations.append(destination)
        losses.append(loss)
        keys = np.delete(keys, int(np.searchsorted(keys, victim)))
        keys = np.insert(keys, int(np.searchsorted(keys, destination)),
                         destination)
    return ModificationResult(
        victims=np.asarray(victims, dtype=np.int64),
        destinations=np.asarray(destinations, dtype=np.int64),
        losses=np.asarray(losses, dtype=np.float64),
        loss_before=loss_before)
