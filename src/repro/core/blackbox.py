"""Black-box model extraction: the other open direction of Sec. VI.

The white-box assumption (attacker knows the keyset and the trained
parameters) is standard for poisoning analyses, but the paper notes
that in a black-box setting "it would be enough to infer the
parameters of the second-stage models, which are linear regressions"
because RMI architectures are constrained by the need to beat B-Trees.

This module implements that inference.  The observable interface is
deliberately minimal — the attacker may submit lookups and observe,
for each probed key, *which second-stage model served it* and *what
position the model predicted* (timing or cache side channels yield
both in practice; an API returning approximate offsets yields them
directly).  From ``(key, predicted position)`` samples per model,
ordinary least squares recovers each model's slope and intercept, and
the partition boundaries fall out of where the serving model changes.

The result plugs straight into the white-box machinery: with the
partitions and the keyset recovered, :func:`repro.core.rmi_attack.poison_rmi`
runs unchanged — which is exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from ..index.rmi import RecursiveModelIndex

__all__ = ["Observation", "InferredModel", "ExtractionResult",
           "observe_rmi", "extract_second_stage"]


@dataclass(frozen=True)
class Observation:
    """One black-box probe: key in, (model id, predicted slot) out."""

    key: int
    model_index: int
    predicted_position: float


@dataclass(frozen=True)
class InferredModel:
    """Recovered parameters of one second-stage model."""

    model_index: int
    slope: float
    intercept: float
    n_samples: int


@dataclass(frozen=True)
class ExtractionResult:
    """All recovered second-stage models plus boundary estimates."""

    models: tuple[InferredModel, ...]
    boundaries: np.ndarray  # first probed key served by each model

    def slope_errors(self, rmi: RecursiveModelIndex) -> np.ndarray:
        """Relative slope error per recovered model (for evaluation)."""
        errors = []
        for inferred in self.models:
            truth = rmi.models[inferred.model_index]
            scale = max(abs(truth.slope), 1e-12)
            errors.append(abs(inferred.slope - truth.slope) / scale)
        return np.asarray(errors)


def observe_rmi(rmi: RecursiveModelIndex,
                probe_keys: np.ndarray) -> list[Observation]:
    """The black-box oracle: probe an RMI and record its responses.

    Models an attacker-visible interface (e.g. an approximate-offset
    API, or the routing + initial probe position recovered through a
    side channel).
    """
    observations = []
    for key in np.asarray(probe_keys):
        model_idx = rmi.route_key(int(key))
        predicted = float(rmi.models[model_idx].predict(float(key)))
        observations.append(Observation(
            key=int(key), model_index=model_idx,
            predicted_position=predicted))
    return observations


def extract_second_stage(
        observations: list[Observation]) -> ExtractionResult:
    """Recover every probed model's line by per-model least squares.

    Models probed at a single key recover only the intercept (slope
    zero); models never probed are absent from the result.  Exact
    recovery needs two distinct keys per model — linear responses make
    this a two-query-per-model extraction, which is why the paper
    considers the black-box gap thin.
    """
    if not observations:
        raise ValueError("no observations to extract from")
    by_model: dict[int, list[Observation]] = {}
    for obs in observations:
        by_model.setdefault(obs.model_index, []).append(obs)

    models = []
    boundaries = []
    for model_index in sorted(by_model):
        group = by_model[model_index]
        keys = np.asarray([o.key for o in group], dtype=np.float64)
        preds = np.asarray([o.predicted_position for o in group])
        if np.unique(keys).size == 1:
            slope, intercept = 0.0, float(preds.mean())
        else:
            mk, mp = keys.mean(), preds.mean()
            dk = keys - mk
            slope = float(dk @ (preds - mp)) / float(dk @ dk)
            intercept = float(mp - slope * mk)
        models.append(InferredModel(
            model_index=model_index,
            slope=slope,
            intercept=intercept,
            n_samples=len(group)))
        boundaries.append(int(keys.min()))
    return ExtractionResult(models=tuple(models),
                            boundaries=np.asarray(boundaries,
                                                  dtype=np.int64))
