"""Greedy multi-point poisoning on a CDF regression (Algorithm 1).

The multi-point attack runs the optimal single-point step of
Section IV-C repeatedly: at each of the ``p`` iterations it inserts
the locally optimal poisoning key into the *augmented-so-far* keyset
(poisoning keys become part of the CDF and are re-ranked like any
other key).  Section IV-D reports this greedy strategy matched the
exhaustive search on every dataset the authors tested.

The attack clusters its insertions inside dense regions of the keyset,
exacerbating the non-linearity of the poisoned CDF (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from ._fastpath import GreedyWorkspace
from .cdf_regression import fit_cdf_regression
from .exceptions import KeySpaceExhausted
from .single_point import optimal_single_point

__all__ = ["GreedyResult", "greedy_poison", "poison_budget"]


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy multi-point poisoning run.

    Attributes
    ----------
    poison_keys:
        The injected keys, in insertion order.  May be shorter than
        the requested budget if the key space ran out of gaps.
    losses:
        Augmented-set MSE after each insertion (same length as
        ``poison_keys``).
    loss_before:
        MSE of the regression on the legitimate keys alone.
    exhausted:
        True when the attack stopped early because no unoccupied
        in-range candidate remained.
    """

    poison_keys: np.ndarray
    losses: np.ndarray
    loss_before: float
    exhausted: bool = False

    @property
    def n_injected(self) -> int:
        """Number of poisoning keys actually placed."""
        return int(self.poison_keys.size)

    @property
    def loss_after(self) -> float:
        """Final augmented-set MSE (clean loss if nothing was placed)."""
        if self.losses.size == 0:
            return self.loss_before
        return float(self.losses[-1])

    @property
    def ratio_loss(self) -> float:
        """The paper's metric: poisoned MSE over clean MSE."""
        if self.loss_before == 0.0:
            return float("inf") if self.loss_after > 0.0 else 1.0
        return self.loss_after / self.loss_before


def poison_budget(n_keys: int, percentage: float) -> int:
    """Poisoning budget ``p = floor(percentage/100 * n)`` keys.

    The paper bounds realistic adversaries at 20% (Sec. III-C); we
    enforce that cap to keep experiment configs honest.
    """
    if not 0.0 <= percentage <= 20.0:
        raise ValueError(
            f"poisoning percentage must be in [0, 20], got {percentage}")
    return int(n_keys * percentage / 100.0)


def greedy_poison(keyset: KeySet, n_poison: int,
                  interior_only: bool = True) -> GreedyResult:
    """Algorithm 1: insert ``n_poison`` locally optimal keys.

    Each iteration evaluates every gap endpoint of the current
    augmented keyset in one vectorised pass and injects the argmax.
    Overall complexity O(p * n).

    Parameters
    ----------
    keyset:
        The legitimate keys.
    n_poison:
        Requested number of poisoning keys (``p``).
    interior_only:
        Restrict candidates to the legitimate key range (default, per
        the threat model).
    """
    if n_poison < 0:
        raise ValueError(f"poison budget must be non-negative: {n_poison}")
    loss_before = fit_cdf_regression(keyset).mse
    chosen: list[int] = []
    losses: list[float] = []
    exhausted = False
    if interior_only:
        # Hot path: reusable buffers, in-place math, O(n) per step.
        workspace = GreedyWorkspace(keyset.keys, n_poison)
        for _ in range(n_poison):
            try:
                best_key, best_loss = workspace.best_candidate()
            except KeySpaceExhausted:
                exhausted = True
                break
            chosen.append(best_key)
            losses.append(best_loss)
            workspace.insert(best_key)
    else:
        current = keyset
        for _ in range(n_poison):
            try:
                step = optimal_single_point(current, interior_only)
            except KeySpaceExhausted:
                exhausted = True
                break
            chosen.append(step.key)
            losses.append(step.loss_after)
            current = current.insert([step.key])
    return GreedyResult(
        poison_keys=np.asarray(chosen, dtype=np.int64),
        losses=np.asarray(losses, dtype=np.float64),
        loss_before=loss_before,
        exhausted=exhausted)
