"""Allocation-free inner loop for the greedy attack.

The greedy multi-point attack calls the candidate-loss evaluation
``p`` times on arrays of size O(n).  A naive numpy expression chain
allocates ~25 temporaries per call; on systems where large allocations
are served by fresh mmaps (page-fault zeroing) that dominates the
runtime by an order of magnitude.  This module keeps one reusable
workspace of buffers and evaluates the equations (13) of the paper
with in-place ufuncs, bringing the per-iteration cost back to the
O(n) arithmetic itself.

Correctness is pinned by the test suite: the workspace path must
produce bit-identical choices to the straightforward implementation in
:mod:`repro.core.single_point` (which remains the reference and the
public API).
"""

from __future__ import annotations

import numpy as np

from .exceptions import KeySpaceExhausted

__all__ = ["GreedyWorkspace"]


class GreedyWorkspace:
    """Reusable buffers for repeated single-point evaluations.

    Sized for a keyset that grows from ``n`` to ``n + p`` keys; all
    buffers are allocated once in ``__init__`` and sliced per call.
    """

    def __init__(self, initial_keys: np.ndarray, n_poison: int):
        n_cap = initial_keys.size + n_poison
        c_cap = 2 * n_cap + 2
        self._keys = np.empty(n_cap, dtype=np.int64)
        self._keys[:initial_keys.size] = initial_keys
        self._count = int(initial_keys.size)

        self._shifted = np.empty(n_cap, dtype=np.float64)
        self._suffix = np.empty(n_cap + 1, dtype=np.float64)
        self._ranks = np.arange(1, n_cap + 1, dtype=np.float64)
        self._cand = np.empty(c_cap, dtype=np.int64)
        # Four float scratch registers over candidates.
        self._f1 = np.empty(c_cap, dtype=np.float64)
        self._f2 = np.empty(c_cap, dtype=np.float64)
        self._f3 = np.empty(c_cap, dtype=np.float64)
        self._f4 = np.empty(c_cap, dtype=np.float64)

    @property
    def keys(self) -> np.ndarray:
        """Current (legitimate + injected) keys, sorted."""
        return self._keys[:self._count]

    # ------------------------------------------------------------------
    def _candidates(self) -> np.ndarray:
        """Interior gap endpoints, written into the candidate buffer.

        Mirrors ``_interior_endpoints_raw``: interleaved gap lefts and
        rights are already sorted; length-1 gaps repeat their slot.
        """
        keys = self.keys
        diffs = np.diff(keys)
        inner = np.nonzero(diffs > 1)[0]
        c = 2 * inner.size
        if c == 0:
            return self._cand[:0]
        out = self._cand[:c]
        np.add(keys[inner], 1, out=out[0::2])
        np.subtract(keys[inner + 1], 1, out=out[1::2])
        return out

    def best_candidate(self) -> tuple[int, float]:
        """(key, loss-after) of the optimal insertion; in-place math.

        Implements the same algebra as
        :func:`repro.core.single_point._poisoning_losses_raw` with
        preallocated buffers.  Raises :class:`KeySpaceExhausted` when
        the interior holds no gap.
        """
        keys = self.keys
        cand = self._candidates()
        c = cand.size
        if c == 0:
            raise KeySpaceExhausted(
                "no unoccupied candidate key inside the legitimate key range")
        n = keys.size
        big_n = n + 1

        centre = float(keys.mean())
        shifted = self._shifted[:n]
        np.subtract(keys, centre, out=shifted, casting="unsafe")

        ranks = self._ranks[:n]
        sum_k = float(shifted.sum())
        sum_k2 = float(shifted @ shifted)
        sum_kr = float(shifted @ ranks)

        suffix = self._suffix[:n + 1]
        suffix[n] = 0.0
        np.cumsum(shifted[::-1], out=suffix[n - 1::-1])

        insert_at = keys.searchsorted(cand, side="left")

        f_cand = self._f1[:c]
        np.subtract(cand, centre, out=f_cand, casting="unsafe")

        mean_r = (big_n + 1) / 2.0
        var_r = (big_n + 1) * (2 * big_n + 1) / 6.0 - mean_r * mean_r

        # mean_kr -> f2
        mean_kr = self._f2[:c]
        np.add(insert_at, 1.0, out=mean_kr, casting="unsafe")  # insert rank
        np.multiply(mean_kr, f_cand, out=mean_kr)              # cand * rank
        np.take(suffix, insert_at, out=self._f3[:c])
        np.add(mean_kr, self._f3[:c], out=mean_kr)
        np.add(mean_kr, sum_kr, out=mean_kr)
        np.divide(mean_kr, big_n, out=mean_kr)

        # mean_k -> f3
        mean_k = self._f3[:c]
        np.add(f_cand, sum_k, out=mean_k)
        np.divide(mean_k, big_n, out=mean_k)

        # cov -> f2 (mean_kr - mean_k * mean_r)
        cov = mean_kr
        np.multiply(mean_k, mean_r, out=self._f4[:c])
        np.subtract(cov, self._f4[:c], out=cov)

        # var_k -> f1 ((sum_k2 + cand^2)/N - mean_k^2)
        var_k = f_cand
        np.multiply(f_cand, f_cand, out=var_k)
        np.add(var_k, sum_k2, out=var_k)
        np.divide(var_k, big_n, out=var_k)
        np.multiply(mean_k, mean_k, out=self._f4[:c])
        np.subtract(var_k, self._f4[:c], out=var_k)

        # losses -> f2 (var_r - cov^2 / var_k)
        losses = cov
        np.multiply(cov, cov, out=losses)
        np.divide(losses, var_k, out=losses)
        np.subtract(var_r, losses, out=losses)
        np.maximum(losses, 0.0, out=losses)

        best = int(np.argmax(losses))
        return int(cand[best]), float(losses[best])

    def insert(self, key: int) -> None:
        """Insert a key into the sorted buffer in place (memmove)."""
        count = self._count
        if count >= self._keys.size:
            raise RuntimeError("workspace capacity exceeded")
        slot = int(self._keys[:count].searchsorted(key))
        self._keys[slot + 1:count + 1] = self._keys[slot:count]
        self._keys[slot] = key
        self._count = count + 1
