"""Core contribution: poisoning attacks on CDF-trained regressions.

This package implements the paper's attack stack bottom-up:

* :mod:`~repro.core.cdf_regression` — Theorem 1 closed-form fit;
* :mod:`~repro.core.sequences` — gaps, endpoints, discrete derivative;
* :mod:`~repro.core.single_point` — optimal O(n) single-key attack;
* :mod:`~repro.core.brute_force` — O(m n) / exhaustive oracles;
* :mod:`~repro.core.greedy` — Algorithm 1 multi-point attack;
* :mod:`~repro.core.rmi_attack` — Algorithm 2 two-stage RMI attack;
* :mod:`~repro.core.threat_model` — Section III-C attacker budgets;
* :mod:`~repro.core.metrics` — ratio loss and boxplot summaries.
"""

from .blackbox import (
    ExtractionResult,
    InferredModel,
    Observation,
    extract_second_stage,
    observe_rmi,
)
from .brute_force import brute_force_single_point, exhaustive_multi_point
from .cdf_regression import LinearModel, RegressionFit, fit_cdf_regression, mse_of
from .deletion import (
    DeletionResult,
    deletion_losses,
    greedy_delete,
    optimal_single_deletion,
)
from .exceptions import KeySpaceExhausted
from .greedy import GreedyResult, greedy_poison, poison_budget
from .metrics import BoxplotSummary, ratio_loss, summarize
from .modification import (
    ModificationResult,
    best_modification,
    greedy_modify,
)
from .polynomial import PolynomialFit, PolynomialModel, fit_polynomial_cdf
from .rmi_attack import ModelPoisonReport, RMIAttackResult, poison_rmi
from .sequences import (
    GapStructure,
    all_unoccupied_keys,
    candidate_endpoints,
    discrete_derivative,
    find_gaps,
)
from .single_point import (
    SinglePointResult,
    loss_landscape,
    optimal_single_point,
    poisoning_losses,
)
from .threat_model import AttackerCapability, RMIAttackerCapability
from .update_attack import UpdateAttackResult, poison_via_updates

__all__ = [
    "LinearModel",
    "RegressionFit",
    "fit_cdf_regression",
    "mse_of",
    "KeySpaceExhausted",
    "GapStructure",
    "find_gaps",
    "candidate_endpoints",
    "all_unoccupied_keys",
    "discrete_derivative",
    "SinglePointResult",
    "poisoning_losses",
    "optimal_single_point",
    "loss_landscape",
    "brute_force_single_point",
    "exhaustive_multi_point",
    "GreedyResult",
    "greedy_poison",
    "poison_budget",
    "ModelPoisonReport",
    "RMIAttackResult",
    "poison_rmi",
    "AttackerCapability",
    "RMIAttackerCapability",
    "BoxplotSummary",
    "ratio_loss",
    "summarize",
    "DeletionResult",
    "deletion_losses",
    "optimal_single_deletion",
    "greedy_delete",
    "PolynomialModel",
    "PolynomialFit",
    "fit_polynomial_cdf",
    "Observation",
    "InferredModel",
    "ExtractionResult",
    "observe_rmi",
    "extract_second_stage",
    "UpdateAttackResult",
    "poison_via_updates",
    "ModificationResult",
    "best_modification",
    "greedy_modify",
]
