"""Update-channel poisoning of a dynamic learned index (Sec. VI).

The static attack assumes the adversary contributes keys before the
initial training.  A deployed, updatable index re-trains periodically
on data that *includes everything inserted since*, so an adversary
restricted to the public ``insert`` API can stage the same poisoning:

1. observe (white-box, per the threat model) the current base keys;
2. compute the greedy poisoning set against the *merged* future
   training set with Algorithm 1 / Algorithm 2;
3. drip the crafted keys through ``insert`` so they sit in the delta
   buffer until the retrain threshold trips;
4. the index happily retrains on the poisoned merge.

The only new constraint relative to the static attack is that the
adversary's insertions themselves advance the retrain clock, so the
budget must fit inside one retrain window (or be split across
windows; :func:`poison_via_updates` reports per-window outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from ..index.dynamic import DynamicLearnedIndex
from .rmi_attack import poison_rmi
from .threat_model import RMIAttackerCapability

__all__ = ["UpdateAttackResult", "poison_via_updates"]


@dataclass(frozen=True)
class UpdateAttackResult:
    """Outcome of poisoning through the update API.

    Attributes
    ----------
    injected_keys:
        Keys pushed through ``insert`` (in order).
    retrains_triggered:
        Retrain cycles the injections caused.
    mse_before:
        Mean second-stage MSE of the index before any injection.
    mse_after:
        Mean second-stage MSE after the final retrain.
    """

    injected_keys: np.ndarray
    retrains_triggered: int
    mse_before: float
    mse_after: float

    @property
    def ratio_loss(self) -> float:
        """Post-retrain mean model MSE over the pre-attack value."""
        if self.mse_before == 0.0:
            return float("inf") if self.mse_after > 0.0 else 1.0
        return self.mse_after / self.mse_before


def poison_via_updates(index: DynamicLearnedIndex,
                       poisoning_percentage: float,
                       alpha: float = 3.0) -> UpdateAttackResult:
    """Stage Algorithm 2 through the index's insert API.

    The crafted keys are computed against the current base keys and
    the index's actual second-stage architecture (the merge the next
    retrain trains on is base + buffer; the adversary owns the buffer
    contents it adds).  Because the final merged keyset is a plain set
    union, the insertion order and any intermediate retrains do not
    change the final trained models — only when the damage lands.

    Parameters
    ----------
    index:
        The live dynamic index (mutated in place — this *is* the
        attack).
    poisoning_percentage:
        Budget as a percentage of the current key count, capped at 20
        like the static threat model.
    alpha:
        Per-model poisoning threshold multiplier (Sec. V).
    """
    if not 0.0 < poisoning_percentage <= 20.0:
        raise ValueError(
            f"percentage must be in (0, 20]: {poisoning_percentage}")
    base = KeySet(index.rmi.store.keys)
    mse_before = float(index.second_stage_mse().mean())

    capability = RMIAttackerCapability(
        poisoning_percentage=poisoning_percentage, alpha=alpha)
    crafted = poison_rmi(base, index.rmi.n_models, capability,
                         max_exchanges=index.rmi.n_models)
    retrains = index.insert_batch(crafted.poison_keys)
    if index.delta_size > 0:
        # Flush the tail of the budget into a final training cycle so
        # the measurement reflects the fully poisoned model.
        index.flush()
        retrains += 1

    mse_after = float(index.second_stage_mse().mean())
    return UpdateAttackResult(
        injected_keys=crafted.poison_keys,
        retrains_triggered=retrains,
        mse_before=mse_before,
        mse_after=mse_after)
