"""Evaluation metrics: ratio loss and distribution summaries.

The original learned-index benchmark measures nanoseconds with a
non-public C++ harness, so the paper defines the implementation-
independent **Ratio Loss**: the MSE of the model trained on the
poisoned keyset divided by the MSE of the model trained on the
legitimate keyset.  All figures report boxplots of this quantity; the
helpers here compute the same five-number summaries so the benchmark
harness can print paper-comparable rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["ratio_loss", "BoxplotSummary", "summarize"]


def ratio_loss(loss_before: float, loss_after: float) -> float:
    """Poisoned MSE over clean MSE (Sec. III-C).

    A clean loss of exactly zero (perfectly linear CDF) maps to
    ``inf`` when poisoned, ``1.0`` when untouched.
    """
    if loss_before == 0.0:
        return float("inf") if loss_after > 0.0 else 1.0
    return loss_after / loss_before


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary plus mean, matching the figures' boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    def row(self) -> str:
        """One formatted table row: min / q1 / median / q3 / max."""
        return (f"min={self.minimum:9.3g} q1={self.q1:9.3g} "
                f"med={self.median:9.3g} q3={self.q3:9.3g} "
                f"max={self.maximum:9.3g} (mean={self.mean:9.3g}, "
                f"n={self.count})")


def summarize(values: Iterable[float]) -> BoxplotSummary:
    """Five-number summary of a sample of ratio losses."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return BoxplotSummary(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        count=int(arr.size))
