"""Gap structure, endpoint sequences and discrete derivatives.

Section IV-C's efficiency argument rests on three structural facts:

1. the loss after inserting a candidate poisoning key ``kp`` is a
   *sequence* ``L(kp)`` indexed by the unoccupied key values;
2. consecutive candidates admit O(1) updates of the regression
   statistics (Definition 3's discrete derivative);
3. within each maximal run of unoccupied keys (a *gap*) the sequence
   is convex (Theorem 2), so its maximum over the gap is attained at
   one of the two gap endpoints.

This module exposes the gap/endpoint bookkeeping shared by the fast
single-point attack, the loss-landscape plots (Fig. 3) and the tests
that verify convexity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet

__all__ = [
    "GapStructure",
    "find_gaps",
    "candidate_endpoints",
    "all_unoccupied_keys",
    "discrete_derivative",
]


@dataclass(frozen=True)
class GapStructure:
    """Maximal runs of unoccupied keys between stored keys.

    ``lefts[i]`` and ``rights[i]`` are the smallest and largest
    unoccupied key of the i-th gap (inclusive; equal for length-1
    gaps).  With the paper's in-range restriction there are at most
    ``n - 1`` interior gaps.
    """

    lefts: np.ndarray
    rights: np.ndarray

    @property
    def count(self) -> int:
        """Number of gaps."""
        return int(self.lefts.size)

    @property
    def total_slots(self) -> int:
        """Total number of unoccupied candidate keys across all gaps."""
        if self.count == 0:
            return 0
        return int(np.sum(self.rights - self.lefts + 1))

    def endpoints(self) -> np.ndarray:
        """Sorted unique endpoints of every gap (the sequence ``S``).

        By Theorem 2 these are the only candidates the attack must
        evaluate: the per-gap maximum of the convex loss sequence sits
        at a gap boundary.
        """
        if self.count == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([self.lefts, self.rights]))


def find_gaps(keyset: KeySet, interior_only: bool = True) -> GapStructure:
    """Locate every maximal run of unoccupied keys.

    Parameters
    ----------
    keyset:
        The (possibly already partially poisoned) keyset.
    interior_only:
        When true (the paper's threat model) only keys strictly
        between the smallest and largest stored key are candidates —
        out-of-range insertions are trivially detected and filtered.
        When false, the runs touching the domain boundaries are
        included as well (useful for analysis).
    """
    keys = keyset.keys
    diffs = np.diff(keys)
    inner = np.nonzero(diffs > 1)[0]
    lefts = keys[inner] + 1
    rights = keys[inner + 1] - 1

    if not interior_only:
        domain = keyset.domain
        head_left, head_right = [], []
        if keys[0] > domain.lo:
            head_left.append(domain.lo)
            head_right.append(int(keys[0]) - 1)
        tail_left, tail_right = [], []
        if keys[-1] < domain.hi:
            tail_left.append(int(keys[-1]) + 1)
            tail_right.append(domain.hi)
        lefts = np.concatenate(
            [np.asarray(head_left, dtype=np.int64), lefts,
             np.asarray(tail_left, dtype=np.int64)])
        rights = np.concatenate(
            [np.asarray(head_right, dtype=np.int64), rights,
             np.asarray(tail_right, dtype=np.int64)])

    lefts = np.ascontiguousarray(lefts, dtype=np.int64)
    rights = np.ascontiguousarray(rights, dtype=np.int64)
    return GapStructure(lefts, rights)


def candidate_endpoints(keyset: KeySet,
                        interior_only: bool = True) -> np.ndarray:
    """The attack's candidate poisoning keys (gap endpoints, sorted)."""
    return find_gaps(keyset, interior_only).endpoints()


def all_unoccupied_keys(keyset: KeySet,
                        interior_only: bool = True) -> np.ndarray:
    """Every unoccupied key value — the brute-force candidate set.

    O(m) memory; only call this on small domains (tests, Fig. 3).
    """
    gaps = find_gaps(keyset, interior_only)
    if gaps.count == 0:
        return np.empty(0, dtype=np.int64)
    pieces = [np.arange(lo, hi + 1, dtype=np.int64)
              for lo, hi in zip(gaps.lefts, gaps.rights)]
    return np.concatenate(pieces)


def discrete_derivative(values: np.ndarray) -> np.ndarray:
    """Definition 3: ``(ΔA)(i) = A(i+1) - A(i)``.

    Returned array is one element shorter than the input.  Applying it
    twice gives the second difference used to check per-gap convexity.
    """
    values = np.asarray(values)
    if values.size < 2:
        return np.empty(0, dtype=values.dtype)
    return values[1:] - values[:-1]
