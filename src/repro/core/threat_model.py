"""Adversarial model of Section III-C as explicit configuration.

The paper's attacker is a *white-box poisoning availability* adversary:

* it knows the training keyset and the (future) model parameters;
* it injects up to ``p`` crafted keys before the index is trained,
  with ``100 * p / n`` (the *poisoning percentage*) capped at 20%;
* against an RMI it additionally respects a *per-model threshold*
  ``t = alpha * phi * n / N`` so that no single second-stage model is
  overpopulated enough to trip a volume-based defense (Sec. V).

Encoding the knobs in frozen dataclasses keeps every experiment's
assumptions auditable and rules out accidental out-of-model configs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AttackerCapability", "RMIAttackerCapability"]

#: Hard cap on the poisoning percentage (Sec. III-C).
MAX_POISONING_PERCENTAGE = 20.0


@dataclass(frozen=True)
class AttackerCapability:
    """Budget of the regression attacker.

    Attributes
    ----------
    poisoning_percentage:
        ``100 * p / n`` — crafted keys as a share of legitimate keys.
    interior_only:
        Restrict insertions to the legitimate key range so range and
        outlier sanitizers cannot flag them (the paper's default).
    """

    poisoning_percentage: float
    interior_only: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.poisoning_percentage <= MAX_POISONING_PERCENTAGE:
            raise ValueError(
                "poisoning percentage must be within [0, "
                f"{MAX_POISONING_PERCENTAGE}], got {self.poisoning_percentage}")

    def budget(self, n_keys: int) -> int:
        """Total number of poisoning keys for an ``n_keys`` index."""
        return int(n_keys * self.poisoning_percentage / 100.0)


@dataclass(frozen=True)
class RMIAttackerCapability(AttackerCapability):
    """Budget of the RMI attacker (adds the per-model threshold).

    Attributes
    ----------
    alpha:
        Multiplier of the uniform share: each second-stage model may
        receive at most ``t = alpha * phi * n / N`` poisoning keys.
        The paper evaluates ``alpha`` in {2, 3}.
    epsilon:
        Termination bound of the greedy volume-allocation loop
        (Algorithm 2 stops when no exchange improves the RMI loss by
        more than ``epsilon``).
    """

    alpha: float = 3.0
    epsilon: float = 1e-9

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.alpha < 1.0:
            raise ValueError(
                f"alpha must be >= 1 (uniform allocation), got {self.alpha}")
        if self.epsilon < 0.0:
            raise ValueError(f"epsilon must be non-negative: {self.epsilon}")

    def per_model_threshold(self, n_keys: int, n_models: int) -> int:
        """Per-model cap ``t = alpha * phi * n / N`` (at least 1)."""
        uniform_share = self.budget(n_keys) / n_models
        return max(1, math.floor(self.alpha * uniform_share))
