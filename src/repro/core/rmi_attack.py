"""Greedy poisoning of a two-stage RMI (Section V, Algorithm 2).

The RMI partitions the sorted keyset into ``N`` equal-size contiguous
partitions, one linear second-stage model per partition.  Poisoning it
decomposes into two coupled subproblems:

* **volume allocation** — how many poisoning keys ``|P_i|`` each
  second-stage model receives, subject to the global budget
  ``sum |P_i| = phi * n`` and the per-model threshold
  ``|P_i| <= t = alpha * phi * n / N``;
* **key allocation** — which keys to inject inside a partition, solved
  by Algorithm 1 (:func:`repro.core.greedy.greedy_poison`).

Algorithm 2 starts from the uniform allocation ``phi * n / N`` and then
greedily *exchanges* one unit of poisoning budget together with one
boundary legitimate key between neighbouring models whenever that
raises the RMI loss ``L_RMI = mean_i L_i``:

* ``i -> i+1``: one budget unit moves right, and the smallest
  legitimate key of partition ``i+1`` moves left into partition ``i``;
* ``i <- i+1``: one budget unit moves left, and the largest legitimate
  key of partition ``i`` moves right into partition ``i+1``.

Pairing the budget move with the opposite key move keeps every
partition's total population (legitimate + poisoning) fixed, which is
what lets the exchange evade volume-based anomaly detection.  Each
applied exchange invalidates only the CHANGELOSS entries of the two
touched models and their direct neighbours (six entries), so the loop
costs O(n / N) per step after the initial table build.

A poisoning key injected into partition ``i`` shifts the *global*
ranks of all later partitions by one — but a uniform rank shift is
absorbed by each linear model's intercept, so per-partition MSE (and
hence ``L_RMI``) is computed on partition-local ranks without loss of
generality.  This observation is what makes the per-model
decomposition exact; it is tested in ``tests/core/test_rmi_attack.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from .cdf_regression import fit_cdf_regression
from .greedy import GreedyResult, greedy_poison
from .threat_model import RMIAttackerCapability

__all__ = ["ModelPoisonReport", "RMIAttackResult", "poison_rmi"]


@dataclass(frozen=True)
class ModelPoisonReport:
    """Per-second-stage-model outcome of the RMI attack."""

    model_index: int
    n_keys: int
    budget: int
    n_injected: int
    loss_before: float
    loss_after: float

    @property
    def ratio_loss(self) -> float:
        """Per-model poisoned MSE over clean MSE."""
        if self.loss_before == 0.0:
            return float("inf") if self.loss_after > 0.0 else 1.0
        return self.loss_after / self.loss_before


@dataclass(frozen=True)
class RMIAttackResult:
    """Outcome of Algorithm 2 on a full RMI.

    Attributes
    ----------
    reports:
        One :class:`ModelPoisonReport` per second-stage model.
    poison_keys:
        All injected keys across models (sorted).
    threshold:
        The per-model cap ``t`` that was enforced.
    exchanges:
        Number of greedy volume exchanges performed.
    """

    reports: tuple[ModelPoisonReport, ...]
    poison_keys: np.ndarray
    threshold: int
    exchanges: int

    @property
    def per_model_ratios(self) -> np.ndarray:
        """Ratio loss of each second-stage model (a Fig. 6 boxplot)."""
        return np.asarray([r.ratio_loss for r in self.reports])

    @property
    def rmi_loss_before(self) -> float:
        """Clean ``L_RMI``: mean second-stage MSE before poisoning."""
        return float(np.mean([r.loss_before for r in self.reports]))

    @property
    def rmi_loss_after(self) -> float:
        """Poisoned ``L_RMI``: mean second-stage MSE after poisoning."""
        return float(np.mean([r.loss_after for r in self.reports]))

    @property
    def rmi_ratio_loss(self) -> float:
        """The black horizontal line of Fig. 6: poisoned/clean RMI loss."""
        before = self.rmi_loss_before
        if before == 0.0:
            return float("inf") if self.rmi_loss_after > 0.0 else 1.0
        return self.rmi_loss_after / before

    @property
    def total_injected(self) -> int:
        """Number of poisoning keys actually placed."""
        return int(self.poison_keys.size)


class _PartitionState:
    """Mutable attack state of one second-stage model."""

    __slots__ = ("keys", "budget", "result")

    def __init__(self, keys: np.ndarray, budget: int,
                 result: GreedyResult):
        self.keys = keys
        self.budget = budget
        self.result = result


def _run_partition(keys: np.ndarray, budget: int) -> GreedyResult:
    """Key allocation: Algorithm 1 on one partition with local ranks.

    The partition keyset uses its own key range as the domain, so all
    candidates stay strictly inside the partition and first-stage
    routing is unaffected (the attack never poisons stage one).
    """
    local = KeySet(keys)
    return greedy_poison(local, budget, interior_only=True)


def _initial_budgets(total: int, n_models: int, threshold: int) -> np.ndarray:
    """Uniform volume allocation, remainder spread from the left."""
    base, remainder = divmod(total, n_models)
    budgets = np.full(n_models, base, dtype=np.int64)
    budgets[:remainder] += 1
    max_initial = base + (1 if remainder else 0)
    if max_initial > threshold:
        raise ValueError(
            f"per-model threshold {threshold} below the uniform share "
            f"{max_initial}; increase alpha")
    return budgets


def poison_rmi(keyset: KeySet, n_models: int,
               capability: RMIAttackerCapability,
               max_exchanges: int | None = None) -> RMIAttackResult:
    """Algorithm 2: greedy volume allocation + greedy key allocation.

    Parameters
    ----------
    keyset:
        The legitimate keys of the whole index.
    n_models:
        Number of second-stage models ``N`` (equal-size partition).
    capability:
        Attacker budget: poisoning percentage ``phi``, per-model
        threshold multiplier ``alpha`` and termination bound
        ``epsilon``.
    max_exchanges:
        Safety cap on greedy volume exchanges; defaults to ``10 * N``.
        Pass ``0`` for the *uniform allocation* ablation (no volume
        re-balancing, key allocation only).

    Returns
    -------
    RMIAttackResult
        Per-model and aggregate ratio losses plus the injected keys.
    """
    total_budget = capability.budget(keyset.n)
    threshold = capability.per_model_threshold(keyset.n, n_models)
    if max_exchanges is None:
        max_exchanges = 10 * n_models

    partitions = [p.keys.copy() for p in keyset.partition(n_models)]
    budgets = _initial_budgets(total_budget, n_models, threshold)

    # Clean per-model baseline: the MSE of each second-stage model on
    # the *original* equal-size partition.  Exchanges later shift a few
    # boundary keys between neighbouring partitions, but the ratio the
    # paper reports is always against the un-attacked index.
    clean_losses = [fit_cdf_regression(KeySet(keys)).mse
                    for keys in partitions]

    states = [
        _PartitionState(keys, int(budget), _run_partition(keys, int(budget)))
        for keys, budget in zip(partitions, budgets)
    ]

    n_pairs = n_models - 1
    exchanges = 0
    if n_pairs > 0 and max_exchanges > 0 and total_budget > 0:
        exchanges = _greedy_volume_allocation(
            states, threshold, capability.epsilon, max_exchanges)

    reports = []
    poison: list[np.ndarray] = []
    for index, state in enumerate(states):
        clean = clean_losses[index]
        reports.append(ModelPoisonReport(
            model_index=index,
            n_keys=int(state.keys.size),
            budget=state.budget,
            n_injected=state.result.n_injected,
            loss_before=clean,
            loss_after=state.result.loss_after))
        if state.result.n_injected:
            poison.append(state.result.poison_keys)
    all_poison = (np.sort(np.concatenate(poison)) if poison
                  else np.empty(0, dtype=np.int64))
    return RMIAttackResult(
        reports=tuple(reports),
        poison_keys=all_poison,
        threshold=threshold,
        exchanges=exchanges)


# ----------------------------------------------------------------------
# Greedy volume allocation internals
# ----------------------------------------------------------------------

def _exchange_outcome(states: list[_PartitionState], i: int,
                      forward: bool, threshold: int
                      ) -> tuple[float, GreedyResult, GreedyResult] | None:
    """Simulate the exchange between models ``i`` and ``i+1``.

    ``forward`` is the paper's ``i -> i+1`` (budget right, smallest
    key of ``i+1`` left); otherwise ``i <- i+1``.  Returns the change
    in ``sum_i L_i`` and the two hypothetical partition results, or
    ``None`` when the move is infeasible (budget or threshold).
    """
    left, right = states[i], states[i + 1]
    if forward:
        donor, receiver = left, right
    else:
        donor, receiver = right, left
    if donor.budget < 1 or receiver.budget + 1 > threshold:
        return None

    if forward:
        if right.keys.size < 2:
            return None
        new_left_keys = np.append(left.keys, right.keys[0])
        new_right_keys = right.keys[1:]
        new_left_budget, new_right_budget = left.budget - 1, right.budget + 1
    else:
        if left.keys.size < 2:
            return None
        new_left_keys = left.keys[:-1]
        new_right_keys = np.concatenate([left.keys[-1:], right.keys])
        new_left_budget, new_right_budget = left.budget + 1, right.budget - 1

    new_left = _run_partition(new_left_keys, new_left_budget)
    new_right = _run_partition(new_right_keys, new_right_budget)
    delta = (new_left.loss_after + new_right.loss_after
             - left.result.loss_after - right.result.loss_after)
    return delta, new_left, new_right


def _greedy_volume_allocation(states: list[_PartitionState],
                              threshold: int, epsilon: float,
                              max_exchanges: int) -> int:
    """The CHANGELOSS loop of Algorithm 2; returns exchanges applied."""
    n_pairs = len(states) - 1
    # fwd[i] / bwd[i] cache the delta of exchanging i -> i+1 / i <- i+1;
    # NaN marks an infeasible move.  The hypothetical partition results
    # are recomputed on application, keeping memory at O(N).
    fwd = np.full(n_pairs, np.nan)
    bwd = np.full(n_pairs, np.nan)

    def refresh(i: int) -> None:
        for arr, forward in ((fwd, True), (bwd, False)):
            outcome = _exchange_outcome(states, i, forward, threshold)
            arr[i] = np.nan if outcome is None else outcome[0]

    for i in range(n_pairs):
        refresh(i)

    exchanges = 0
    while exchanges < max_exchanges:
        best_fwd = np.nanmax(fwd) if not np.all(np.isnan(fwd)) else -np.inf
        best_bwd = np.nanmax(bwd) if not np.all(np.isnan(bwd)) else -np.inf
        best = max(best_fwd, best_bwd)
        if not np.isfinite(best) or best <= epsilon:
            break
        forward = best_fwd >= best_bwd
        i = int(np.nanargmax(fwd if forward else bwd))

        outcome = _exchange_outcome(states, i, forward, threshold)
        if outcome is None:  # cache went stale; refresh and retry
            refresh(i)
            continue
        delta, new_left, new_right = outcome
        if delta <= epsilon:
            refresh(i)
            continue

        left, right = states[i], states[i + 1]
        if forward:
            left.keys = np.append(left.keys, right.keys[0])
            right.keys = right.keys[1:]
            left.budget -= 1
            right.budget += 1
        else:
            moved = left.keys[-1:]
            left.keys = left.keys[:-1]
            right.keys = np.concatenate([moved, right.keys])
            left.budget += 1
            right.budget -= 1
        left.result = new_left
        right.result = new_right
        exchanges += 1

        # Only entries touching partitions i-1, i, i+1, i+2 changed.
        for j in (i - 1, i, i + 1):
            if 0 <= j < n_pairs:
                refresh(j)
    return exchanges
