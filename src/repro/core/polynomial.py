"""Polynomial regression on CDFs: the "more complex model" trade-off.

Section VI's last mitigation idea: "future learned index structures
may choose more complex final-stage models", trading storage and
compute for robustness against the linear-regression attack.  To make
the trade-off measurable we implement least-squares polynomial fits
of the CDF (degree 1 reproduces the linear model exactly) along with
the storage/compute cost bookkeeping the paper argues about:

* a degree-``d`` model stores ``d + 1`` parameters (vs 2) and spends
  ``d`` multiply-adds per prediction (vs 1);
* the ablation benchmark refits the *poisoned* keysets produced by the
  linear attack with degree-2/3 models and reports how much of the
  inflated loss the extra capacity absorbs.

Keys are normalised to [0, 1] before fitting, both for conditioning
and so coefficients are comparable across key magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet

__all__ = ["PolynomialModel", "PolynomialFit", "fit_polynomial_cdf"]


@dataclass(frozen=True)
class PolynomialModel:
    """``rank ~ sum_i coeffs[i] * x_norm^i`` with min-max normalised keys."""

    coefficients: tuple[float, ...]
    key_lo: float
    key_span: float

    @property
    def degree(self) -> int:
        """Polynomial degree ``d``."""
        return len(self.coefficients) - 1

    @property
    def n_parameters(self) -> int:
        """Stored floats — the storage cost the paper worries about."""
        return len(self.coefficients) + 2  # coeffs + normalisation pair

    @property
    def multiply_adds_per_lookup(self) -> int:
        """Horner-evaluation cost (vs 1 for the linear model)."""
        return max(self.degree, 1)

    def predict(self, keys: np.ndarray) -> np.ndarray:
        """Predicted fractional rank(s)."""
        x = (np.asarray(keys, dtype=np.float64) - self.key_lo)
        x = x / self.key_span if self.key_span else x
        out = np.zeros_like(np.atleast_1d(x), dtype=np.float64)
        for coeff in reversed(self.coefficients):  # Horner
            out = out * np.atleast_1d(x) + coeff
        return out


@dataclass(frozen=True)
class PolynomialFit:
    """A fitted polynomial CDF model and its training loss."""

    model: PolynomialModel
    mse: float
    n: int


def fit_polynomial_cdf(keyset: KeySet | np.ndarray, degree: int,
                       ranks: np.ndarray | None = None) -> PolynomialFit:
    """Least-squares polynomial fit of a CDF.

    Parameters
    ----------
    keyset:
        A :class:`KeySet` (its 1-based ranks are used) or a raw key
        array with explicit ``ranks``.
    degree:
        Polynomial degree; 1 reproduces the linear closed form.
    ranks:
        Required when passing a raw array.
    """
    if degree < 1:
        raise ValueError(f"degree must be at least 1: {degree}")
    if isinstance(keyset, KeySet):
        keys = keyset.keys.astype(np.float64)
        responses = keyset.ranks.astype(np.float64)
    else:
        if ranks is None:
            raise ValueError("raw key arrays require an explicit rank array")
        keys = np.asarray(keyset, dtype=np.float64)
        responses = np.asarray(ranks, dtype=np.float64)
    n = keys.size
    if n == 0:
        raise ValueError("cannot fit a polynomial on an empty keyset")
    if degree >= n:
        raise ValueError(
            f"degree {degree} needs more than {n} distinct keys")

    lo = float(keys.min())
    span = float(keys.max() - keys.min())
    x = (keys - lo) / span if span else keys - lo

    design = np.vander(x, degree + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(design, responses, rcond=None)
    residuals = design @ coeffs - responses
    mse = float(residuals @ residuals) / n
    model = PolynomialModel(coefficients=tuple(float(c) for c in coeffs),
                            key_lo=lo, key_span=span)
    return PolynomialFit(model=model, mse=mse, n=n)
