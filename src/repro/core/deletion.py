"""Deletion poisoning: adversaries that remove keys (Sec. VI, future work).

The paper's closing discussion names "adversaries that are capable of
removing and modifying keys" as an open extension.  Deletion has the
same compound structure as insertion, mirrored: removing a key
*decrements* the rank of every larger key, so one deletion perturbs
the whole upper CDF.

The machinery mirrors :mod:`repro.core.single_point`: with the victim
key's rank ``r`` and the suffix sums of the remaining keys, all the
post-deletion regression statistics are O(1) per candidate, so the
optimal single deletion is one vectorised pass over the stored keys,
and the greedy multi-deletion repeats it.

A deletion adversary is *strictly stronger* in one sense — it needs no
gap structure (every stored key is a candidate) — but bounded in
another: it cannot delete more keys than it is credited for, and mass
deletions are far easier to audit than plausible-looking insertions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from .cdf_regression import fit_cdf_regression

__all__ = ["DeletionResult", "deletion_losses", "optimal_single_deletion",
           "greedy_delete"]


@dataclass(frozen=True)
class DeletionResult:
    """Outcome of a (multi-)deletion attack.

    Attributes
    ----------
    removed_keys:
        Victim keys in removal order.
    losses:
        MSE of the regression refit after each removal.
    loss_before:
        MSE on the intact keyset.
    """

    removed_keys: np.ndarray
    losses: np.ndarray
    loss_before: float

    @property
    def n_removed(self) -> int:
        """Number of keys removed."""
        return int(self.removed_keys.size)

    @property
    def loss_after(self) -> float:
        """Final refit MSE."""
        if self.losses.size == 0:
            return self.loss_before
        return float(self.losses[-1])

    @property
    def ratio_loss(self) -> float:
        """Post-deletion MSE over intact MSE."""
        if self.loss_before == 0.0:
            return float("inf") if self.loss_after > 0.0 else 1.0
        return self.loss_after / self.loss_before


def _deletion_losses_raw(keys: np.ndarray) -> np.ndarray:
    """Refit MSE after deleting each stored key, vectorised.

    Removing the key at 0-based index ``j`` (value ``x``, rank
    ``j + 1``) leaves ``n - 1`` points whose rank multiset is exactly
    ``{1..n-1}`` — larger keys each lose one rank.  Hence::

        sum(K)   -> sum(K) - x
        sum(K^2) -> sum(K^2) - x^2
        sum(K*R) -> sum(K*R) - x*(j+1) - (sum of keys > x)

    where the last term is the mirrored compound effect.
    """
    n = keys.size
    if n <= 2:
        # Deleting from a 2-key set leaves a perfect 1-point fit.
        return np.zeros(n, dtype=np.float64)
    small_n = n - 1

    centre = float(keys.mean())
    shifted = keys.astype(np.float64) - centre
    ranks = np.arange(1, n + 1, dtype=np.float64)

    sum_k = float(shifted.sum())
    sum_k2 = float(shifted @ shifted)
    sum_kr = float(shifted @ ranks)
    # suffix[j] = sum of shifted keys with index > j (strictly above).
    suffix = np.concatenate(
        [np.cumsum(shifted[::-1])[::-1][1:], np.zeros(1)])

    tot_k = sum_k - shifted
    tot_k2 = sum_k2 - shifted * shifted
    tot_kr = sum_kr - shifted * ranks - suffix

    mean_k = tot_k / small_n
    mean_k2 = tot_k2 / small_n
    mean_kr = tot_kr / small_n
    mean_r = (small_n + 1) / 2.0
    mean_r2 = (small_n + 1) * (2 * small_n + 1) / 6.0

    var_k = mean_k2 - mean_k * mean_k
    var_r = mean_r2 - mean_r * mean_r
    cov = mean_kr - mean_k * mean_r

    with np.errstate(divide="ignore", invalid="ignore"):
        losses = var_r - cov * cov / var_k
    losses = np.where(var_k <= 0.0, 0.0, losses)
    return np.maximum(losses, 0.0)


def deletion_losses(keyset: KeySet) -> np.ndarray:
    """Refit MSE after deleting each stored key (aligned with keys)."""
    return _deletion_losses_raw(keyset.keys)


def optimal_single_deletion(keyset: KeySet) -> tuple[int, float]:
    """The stored key whose removal maximises the refit MSE.

    Returns ``(victim_key, loss_after)``.  Ties break toward the
    smallest key.  Requires at least three keys (fewer leave a
    degenerate regression).
    """
    if keyset.n < 3:
        raise ValueError("need at least 3 keys to attack by deletion")
    losses = _deletion_losses_raw(keyset.keys)
    best = int(np.argmax(losses))
    return int(keyset.keys[best]), float(losses[best])


def greedy_delete(keyset: KeySet, n_delete: int) -> DeletionResult:
    """Greedy multi-deletion: remove the locally optimal victim p times.

    Mirrors Algorithm 1 with removal instead of insertion.  Stops
    early when only two keys would remain.
    """
    if n_delete < 0:
        raise ValueError(f"deletion budget must be non-negative: {n_delete}")
    loss_before = fit_cdf_regression(keyset).mse
    keys = keyset.keys.copy()
    removed: list[int] = []
    losses: list[float] = []
    for _ in range(n_delete):
        if keys.size <= 3:
            break
        victim_losses = _deletion_losses_raw(keys)
        best = int(np.argmax(victim_losses))
        removed.append(int(keys[best]))
        losses.append(float(victim_losses[best]))
        keys = np.delete(keys, best)
    return DeletionResult(
        removed_keys=np.asarray(removed, dtype=np.int64),
        losses=np.asarray(losses, dtype=np.float64),
        loss_before=loss_before)
