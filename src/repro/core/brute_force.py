"""Brute-force poisoning baselines (the paper's "first attempt").

These are deliberately naive, independent implementations used as
correctness oracles for the fast attack:

* :func:`brute_force_single_point` re-fits the regression from scratch
  for *every* unoccupied key — the O(m*n) strategy Section IV-C
  improves upon.  Its result must exactly match
  :func:`repro.core.single_point.optimal_single_point`.
* :func:`exhaustive_multi_point` tries every *combination* of ``p``
  poisoning keys (exponential; tiny inputs only).  Section IV-D reports
  the greedy attack empirically matched this on every tested dataset.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..data.keyset import KeySet
from .cdf_regression import fit_cdf_regression
from .exceptions import KeySpaceExhausted
from .sequences import all_unoccupied_keys
from .single_point import SinglePointResult

__all__ = ["brute_force_single_point", "exhaustive_multi_point"]


def _augmented_loss(keyset: KeySet, poison: np.ndarray) -> float:
    """Loss of the regression re-trained on keyset + poison keys."""
    return fit_cdf_regression(keyset.insert(poison)).mse


def brute_force_single_point(keyset: KeySet,
                             interior_only: bool = True) -> SinglePointResult:
    """O(m*n) reference: refit for every unoccupied key, keep the max.

    Ties break toward the smallest key, mirroring the fast attack.
    """
    candidates = all_unoccupied_keys(keyset, interior_only)
    if candidates.size == 0:
        raise KeySpaceExhausted(
            "no unoccupied candidate key inside the legitimate key range")
    best_key = None
    best_loss = -np.inf
    for cand in candidates:
        loss = _augmented_loss(keyset, np.array([cand]))
        if loss > best_loss:
            best_loss = loss
            best_key = int(cand)
    return SinglePointResult(key=best_key,
                             loss_before=fit_cdf_regression(keyset).mse,
                             loss_after=float(best_loss))


def exhaustive_multi_point(keyset: KeySet, n_poison: int,
                           interior_only: bool = True
                           ) -> tuple[np.ndarray, float]:
    """Try every size-``p`` subset of unoccupied keys (tiny inputs).

    Returns the best poisoning set and its augmented loss.  The search
    space is ``C(m - n, p)``; guard rails refuse anything that would
    exceed about a million combinations.
    """
    candidates = all_unoccupied_keys(keyset, interior_only)
    if candidates.size < n_poison:
        raise KeySpaceExhausted(
            f"only {candidates.size} unoccupied keys, need {n_poison}")
    n_combos = 1.0
    for i in range(n_poison):
        n_combos *= (candidates.size - i) / (i + 1)
    if n_combos > 1e6:
        raise ValueError(
            f"~{n_combos:.2g} combinations — exhaustive search refused")

    best_set: tuple[int, ...] | None = None
    best_loss = -np.inf
    for combo in combinations(candidates.tolist(), n_poison):
        loss = _augmented_loss(keyset, np.asarray(combo, dtype=np.int64))
        if loss > best_loss:
            best_loss = loss
            best_set = combo
    return np.asarray(best_set, dtype=np.int64), float(best_loss)
