"""Optimal single-point poisoning of a CDF regression (Section IV-C).

The fundamental question of the paper: *which single key insertion
maximises the MSE of the re-trained linear regression on the CDF?*

The answer exploits three observations (see :mod:`repro.core.sequences`):
only gap endpoints need evaluation (per-gap convexity, Theorem 2), and
every evaluation is O(1) given prefix/suffix sums of the legitimate
keys.  This module vectorises all candidate evaluations into one numpy
pass, which keeps the overall attack at the paper's O(n) complexity
with tiny constants.

The key algebra (equations (13) of the paper): inserting candidate
``x`` with insertion rank ``t = |{k < x}| + 1`` into a keyset of size
``n`` produces an augmented set of ``n + 1`` points whose rank multiset
is always ``{1, ..., n+1}``.  Hence ``mean(R)`` and ``mean(R^2)`` are
constants, and only three statistics vary with ``x``:

    sum(K)   -> sum(K) + x
    sum(K^2) -> sum(K^2) + x^2
    sum(K*R) -> sum(K*R) + (sum of keys > x)  +  x * t

The middle term is the *compound effect*: every legitimate key above
``x`` has its rank bumped by one, contributing its own value to the
key-rank cross moment.  Keys are mean-centred before any of this to
keep the arithmetic stable for narrow key bands at large magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import KeySet
from .cdf_regression import fit_cdf_regression
from .exceptions import KeySpaceExhausted
from .sequences import all_unoccupied_keys, candidate_endpoints

__all__ = [
    "SinglePointResult",
    "poisoning_losses",
    "optimal_single_point",
    "loss_landscape",
]


@dataclass(frozen=True)
class SinglePointResult:
    """Outcome of one optimal poisoning insertion.

    Attributes
    ----------
    key:
        The chosen poisoning key ``k_OPT``.
    loss_before:
        MSE of the regression trained on the legitimate keys.
    loss_after:
        MSE of the regression re-trained on the augmented keyset.
    """

    key: int
    loss_before: float
    loss_after: float

    @property
    def ratio_loss(self) -> float:
        """The paper's evaluation metric: poisoned MSE / clean MSE."""
        if self.loss_before == 0.0:
            return float("inf") if self.loss_after > 0.0 else 1.0
        return self.loss_after / self.loss_before


def _poisoning_losses_raw(keys: np.ndarray,
                          candidates: np.ndarray) -> np.ndarray:
    """Vectorised candidate losses over a raw sorted key array.

    Hot path shared by the public wrapper and the greedy driver
    (which maintains a plain sorted array to avoid re-validating a
    :class:`KeySet` on every insertion).
    """
    n = keys.size
    big_n = n + 1

    # Mean-centre keys (loss is translation invariant).
    centre = float(keys.mean())
    shifted = keys.astype(np.float64) - centre
    cand = candidates.astype(np.float64) - centre

    ranks = np.arange(1, n + 1, dtype=np.float64)
    sum_k = float(shifted.sum())
    sum_k2 = float(shifted @ shifted)
    sum_kr = float(shifted @ ranks)

    # suffix[j] = sum of shifted keys with 0-based index >= j, i.e. the
    # total mass of keys whose rank the insertion bumps by one.
    suffix = np.concatenate(
        [np.cumsum(shifted[::-1])[::-1], np.zeros(1, dtype=np.float64)])

    insert_at = np.searchsorted(keys, candidates, side="left")
    insert_rank = insert_at.astype(np.float64) + 1.0

    tot_k = sum_k + cand
    tot_k2 = sum_k2 + cand * cand
    tot_kr = sum_kr + suffix[insert_at] + cand * insert_rank

    mean_k = tot_k / big_n
    mean_k2 = tot_k2 / big_n
    mean_kr = tot_kr / big_n
    # Rank moments are independent of the candidate: ranks are always
    # exactly {1..n+1} after the insertion.
    mean_r = (big_n + 1) / 2.0
    mean_r2 = (big_n + 1) * (2 * big_n + 1) / 6.0

    var_k = mean_k2 - mean_k * mean_k
    var_r = mean_r2 - mean_r * mean_r
    cov = mean_kr - mean_k * mean_r

    losses = var_r - cov * cov / var_k
    return np.maximum(losses, 0.0)


def poisoning_losses(keyset: KeySet, candidates: np.ndarray) -> np.ndarray:
    """Augmented-regression MSE for every candidate key, vectorised.

    ``candidates`` must contain only unoccupied keys; each entry is
    evaluated as if it were inserted alone.  Runs in O(n + c) for
    ``c`` candidates after an O(n) precomputation.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        return np.empty(0, dtype=np.float64)
    return _poisoning_losses_raw(keyset.keys, candidates)


def _interior_endpoints_raw(keys: np.ndarray) -> np.ndarray:
    """Gap endpoints of a raw sorted key array (interior gaps only).

    Endpoints are emitted in sorted order without a sort: for the
    i-th gap, ``left_i <= right_i < left_{i+1}``, so interleaving the
    two endpoint arrays is already monotone.  Length-1 gaps emit their
    single slot twice, which is harmless for the argmax (the first
    occurrence wins, preserving smallest-key tie-breaking).
    """
    diffs = np.diff(keys)
    inner = np.nonzero(diffs > 1)[0]
    if inner.size == 0:
        return np.empty(0, dtype=np.int64)
    out = np.empty(2 * inner.size, dtype=np.int64)
    out[0::2] = keys[inner] + 1
    out[1::2] = keys[inner + 1] - 1
    return out


def _best_candidate_raw(keys: np.ndarray) -> tuple[int, float]:
    """(best key, loss after) over interior gap endpoints; raw arrays.

    Raises :class:`KeySpaceExhausted` when the interior has no gaps.
    """
    candidates = _interior_endpoints_raw(keys)
    if candidates.size == 0:
        raise KeySpaceExhausted(
            "no unoccupied candidate key inside the legitimate key range")
    losses = _poisoning_losses_raw(keys, candidates)
    best = int(np.argmax(losses))
    return int(candidates[best]), float(losses[best])


def optimal_single_point(keyset: KeySet,
                         interior_only: bool = True) -> SinglePointResult:
    """Find the poisoning key that maximises the re-trained MSE.

    Only gap endpoints are evaluated (Theorem 2); ties break toward
    the smallest key.  Raises :class:`KeySpaceExhausted` when no
    unoccupied in-range key exists.
    """
    candidates = candidate_endpoints(keyset, interior_only)
    if candidates.size == 0:
        raise KeySpaceExhausted(
            "no unoccupied candidate key inside the legitimate key range")
    losses = poisoning_losses(keyset, candidates)
    best = int(np.argmax(losses))
    loss_before = fit_cdf_regression(keyset).mse
    return SinglePointResult(key=int(candidates[best]),
                             loss_before=loss_before,
                             loss_after=float(losses[best]))


def loss_landscape(keyset: KeySet, interior_only: bool = True
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Loss sequence ``L(kp)`` over every unoccupied key (Fig. 3).

    Returns the candidate keys and their losses; O(m) memory, meant
    for small illustrative domains and for validating the endpoint
    shortcut against exhaustive evaluation.
    """
    candidates = all_unoccupied_keys(keyset, interior_only)
    return candidates, poisoning_losses(keyset, candidates)
