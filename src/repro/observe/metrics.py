"""Deterministic metrics registry + structured trace-event log.

The observability contract mirrors how ``SweepStats`` already works:
anything wall-clock stays out of canonical payloads and digests.  A
:class:`MetricsRegistry` therefore keeps two kinds of state:

* **Deterministic** — counters, gauges, and the per-tick trace-event
  log.  These are pure functions of the replayed workload (op counts,
  tick counts, cells computed) and are bit-identical across runs,
  jobs, and executors.
* **Wall-clock** — timing histograms (count / total / min / max
  seconds per stage).  These are recorded for profiling and surface
  only in the ``instrument`` section of result payloads, which the
  jobs-parity gates never compare (they compare ``payload["result"]``
  alone).

Instrumented code guards every touch with ``if metrics is not None``
so the disabled path costs one attribute check — no null-object
context managers on the hot loops.

Counters and timings are commutative (sums), so the registry is safe
to share across the router's thread fan-out; trace events are emitted
only from the single-threaded simulator tick loops, keeping the log
order deterministic.  A lock protects the read-modify-write updates.

Process-pool workers do not share the parent's registry: the
module-level :func:`install` / :func:`active` pair is per-process, so
at ``jobs>1`` on the process executor a profile honestly carries
engine-level scheduling metrics only.  Inline runs (``jobs=1``) and
thread executors capture the full stage breakdown.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = [
    "MetricsRegistry",
    "TimingStat",
    "active",
    "install",
    "installed",
    "uninstall",
]


@dataclass
class TimingStat:
    """Accumulated wall-clock observations for one named stage."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def to_dict(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": mean,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
        }


class MetricsRegistry:
    """Counters, gauges, timing histograms, and a trace-event log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timings: dict[str, TimingStat] = {}
        self._events: list[dict] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (deterministic)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one wall-clock observation for stage ``name``."""
        with self._lock:
            stat = self._timings.get(name)
            if stat is None:
                stat = self._timings[name] = TimingStat()
            stat.add(seconds)

    def trace(self, event: str, **fields: Any) -> None:
        """Append a structured trace event (deterministic fields only).

        Call sites must pass values that are pure functions of the
        workload (tick indices, op counts, probe sums) — never wall
        times — and must sit on single-threaded paths so the log
        order is reproducible.
        """
        with self._lock:
            self._events.append({"event": event, **fields})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    @property
    def timings(self) -> dict[str, TimingStat]:
        with self._lock:
            return dict(self._timings)

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._timings))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (sums and extend)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, stat in other.timings.items():
            with self._lock:
                mine = self._timings.get(name)
                if mine is None:
                    mine = self._timings[name] = TimingStat()
                mine.count += stat.count
                mine.total += stat.total
                mine.min = min(mine.min, stat.min)
                mine.max = max(mine.max, stat.max)
        with self._lock:
            self._events.extend(other.events)

    def to_profile(self) -> dict:
        """The ``instrument`` payload section, keys sorted.

        ``counters`` / ``gauges`` / ``trace_events`` are
        deterministic; ``timings`` are wall-clock and must never feed
        a digest or a parity comparison.
        """
        with self._lock:
            return {
                "counters": {k: self._counters[k]
                             for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k]
                           for k in sorted(self._gauges)},
                "trace_events": len(self._events),
                "timings": {k: self._timings[k].to_dict()
                            for k in sorted(self._timings)},
            }


# ----------------------------------------------------------------------
# The per-process opt-in hook
# ----------------------------------------------------------------------
_ACTIVE: "MetricsRegistry | None" = None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` the process-wide default sink.

    Components that accept ``metrics=None`` fall back to the
    installed registry, so one :func:`install` at the CLI boundary
    instruments every simulator, router, and engine built afterwards
    without threading a parameter through each constructor.
    """
    global _ACTIVE
    _ACTIVE = registry
    return registry


def uninstall() -> None:
    """Clear the process-wide registry (back to zero-cost no-op)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> "MetricsRegistry | None":
    """The installed registry, or ``None`` when instrumentation is off."""
    return _ACTIVE


class installed:
    """Context manager: install a registry for the enclosed block."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        # `is None`, not truthiness: an empty registry is len() == 0
        # and must still be the one that gets installed.
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        self._previous: "MetricsRegistry | None" = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = active()
        install(self.registry)
        return self.registry

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
