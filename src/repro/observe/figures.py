"""Dependency-free deterministic SVG figures.

No matplotlib in this environment, and no need for it: every figure
the galleries render is a line chart, a heatmap, or a sparkline over
small per-tick arrays.  Each builder returns the SVG as a string
built from fixed-precision formatted floats with sorted, hand-ordered
attributes and no timestamps — identical inputs yield byte-identical
output, so galleries are diffable, pinnable by digest in tests, and
comparable across ``--jobs`` settings in CI.

NaN handling matches the series semantics upstream: NaN breaks a
polyline into segments (closed-loop channels start NaN until the
control loop engages) and renders heatmap cells in neutral grey
(shard columns that do not exist yet under NaN padding).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "PALETTE",
    "bar_figure",
    "heatmap_figure",
    "line_figure",
    "sparkline_figure",
]

#: Matplotlib's tab10 hues, hard-coded so the renderer stays
#: dependency-free and the colors stay stable forever.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd",
           "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f")

_FG = "#24292f"
_FRAME = "#d0d7de"
_BG = "#ffffff"
_NAN = "#e6e6e6"
#: Heatmap ramp endpoints (low -> high), interpolated in RGB.
_RAMP_LO = (33, 102, 172)
_RAMP_HI = (178, 24, 43)

_MARGIN_LEFT = 58
_MARGIN_RIGHT = 14
_TITLE_H = 26
_PANEL_PAD = 10
_LEGEND_H = 14


def _num(value: float) -> str:
    """Fixed-precision coordinate: '%.2f' with trailing zeros kept.

    Keeping the zeros (no rstrip) makes the byte layout a pure
    function of the rounded value.
    """
    return f"{value:.2f}"


def _label(value: float) -> str:
    """Axis label: compact general format, deterministic."""
    if not math.isfinite(value):
        return "nan" if math.isnan(value) else "inf"
    return f"{value:.4g}"


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _text(x: float, y: float, content: str, *, size: int = 11,
          anchor: str = "start", fill: str = _FG) -> str:
    return (f'<text x="{_num(x)}" y="{_num(y)}" '
            f'font-family="monospace" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}">'
            f'{_esc(content)}</text>')


def _rect(x: float, y: float, w: float, h: float, fill: str,
          stroke: "str | None" = None) -> str:
    stroke_attr = (f' stroke="{stroke}" stroke-width="1"'
                   if stroke else "")
    return (f'<rect x="{_num(x)}" y="{_num(y)}" width="{_num(w)}" '
            f'height="{_num(h)}" fill="{fill}"{stroke_attr}/>')


def _polyline(points: "list[tuple[float, float]]", stroke: str) -> str:
    coords = " ".join(f"{_num(x)},{_num(y)}" for x, y in points)
    return (f'<polyline points="{coords}" fill="none" '
            f'stroke="{stroke}" stroke-width="1.5"/>')


def _document(width: int, height: int, body: "list[str]") -> str:
    head = (f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">')
    background = _rect(0, 0, width, height, _BG)
    return "\n".join([head, background, *body, "</svg>"]) + "\n"


def _finite_range(arrays: Iterable[np.ndarray]) -> tuple[float, float]:
    """(lo, hi) across all finite values, padded so flat lines show."""
    finite: list[float] = []
    for arr in arrays:
        values = np.asarray(arr, dtype=np.float64)
        mask = np.isfinite(values)
        if mask.any():
            finite.append(float(values[mask].min()))
            finite.append(float(values[mask].max()))
    if not finite:
        return 0.0, 1.0
    lo, hi = min(finite), max(finite)
    if hi == lo:
        pad = abs(hi) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _series_segments(values: np.ndarray, x0: float, plot_w: float,
                     y0: float, plot_h: float, lo: float,
                     hi: float) -> "list[list[tuple[float, float]]]":
    """Pixel-space polyline segments, split at NaN/inf gaps."""
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        return []
    step = plot_w / max(n - 1, 1)
    segments: list[list[tuple[float, float]]] = []
    current: list[tuple[float, float]] = []
    for i in range(n):
        v = values[i]
        if not math.isfinite(v):
            if len(current) > 1:
                segments.append(current)
            current = []
            continue
        x = x0 + i * step
        y = y0 + plot_h * (1.0 - (v - lo) / (hi - lo))
        current.append((x, y))
    if len(current) > 1:
        segments.append(current)
    elif len(current) == 1:
        # A lone finite point still deserves a visible dot-length dash.
        x, y = current[0]
        segments.append([(x - 0.5, y), (x + 0.5, y)])
    return segments


def line_figure(title: str,
                panels: Sequence[tuple[str, Sequence[tuple[str, np.ndarray]]]],
                *, width: int = 640, panel_height: int = 110) -> str:
    """Stacked line-chart panels sharing the x (tick) axis.

    ``panels`` is a sequence of ``(subtitle, series)`` where each
    ``series`` is a sequence of ``(label, values)`` pairs drawn in
    palette order.
    """
    body: list[str] = []
    height = (_TITLE_H
              + len(panels) * (panel_height + _LEGEND_H + _PANEL_PAD)
              + _PANEL_PAD)
    body.append(_text(_MARGIN_LEFT, 17, title, size=13))
    y_cursor = float(_TITLE_H)
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    for subtitle, series in panels:
        x0 = float(_MARGIN_LEFT)
        y0 = y_cursor + _LEGEND_H
        lo, hi = _finite_range([values for _, values in series])
        body.append(_rect(x0, y0, plot_w, panel_height, _BG,
                          stroke=_FRAME))
        # Legend row: subtitle left, series labels right-to-left.
        body.append(_text(x0, y_cursor + 10, subtitle, size=10))
        legend_x = float(width - _MARGIN_RIGHT)
        for idx in range(len(series) - 1, -1, -1):
            label = series[idx][0]
            color = PALETTE[idx % len(PALETTE)]
            body.append(_text(legend_x, y_cursor + 10, label,
                              size=10, anchor="end", fill=color))
            legend_x -= 7 * len(label) + 12
        # y-axis extremes.
        body.append(_text(x0 - 4, y0 + 9, _label(hi), size=9,
                          anchor="end"))
        body.append(_text(x0 - 4, y0 + panel_height, _label(lo),
                          size=9, anchor="end"))
        for idx, (_, values) in enumerate(series):
            color = PALETTE[idx % len(PALETTE)]
            for segment in _series_segments(values, x0, plot_w, y0,
                                            panel_height, lo, hi):
                body.append(_polyline(segment, color))
        y_cursor = y0 + panel_height + _PANEL_PAD
    # Shared x-axis extent under the last panel.
    n_ticks = max((len(values) for _, series in panels
                   for _, values in series), default=0)
    body.append(_text(_MARGIN_LEFT, y_cursor + 2, "tick 0", size=9))
    body.append(_text(width - _MARGIN_RIGHT, y_cursor + 2,
                      f"tick {max(n_ticks - 1, 0)}", size=9,
                      anchor="end"))
    return _document(width, int(height), body)


def _ramp(t: float) -> str:
    """Low->high color ramp, deterministic integer RGB."""
    r = int(round(_RAMP_LO[0] + (_RAMP_HI[0] - _RAMP_LO[0]) * t))
    g = int(round(_RAMP_LO[1] + (_RAMP_HI[1] - _RAMP_LO[1]) * t))
    b = int(round(_RAMP_LO[2] + (_RAMP_HI[2] - _RAMP_LO[2]) * t))
    return f"#{r:02x}{g:02x}{b:02x}"


def heatmap_figure(title: str, matrix: np.ndarray, *,
                   row_label: str = "tick", col_label: str = "series",
                   width: int = 640, cell_height: int = 16) -> str:
    """A (ticks x columns) matrix as colored cells, NaN in grey.

    Rendered transposed — one horizontal band per column (shard,
    tenant, split), ticks left to right — which matches how the
    cluster figures read: a band per shard over time.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n_ticks, n_cols = matrix.shape
    lo, hi = _finite_range([matrix])
    span = hi - lo
    x0 = float(_MARGIN_LEFT)
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    cell_w = plot_w / max(n_ticks, 1)
    body: list[str] = [_text(x0, 17, title, size=13)]
    y_cursor = float(_TITLE_H)
    for col in range(n_cols):
        body.append(_text(x0 - 4, y_cursor + cell_height - 4,
                          f"{col_label} {col}", size=9, anchor="end"))
        for tick in range(n_ticks):
            value = matrix[tick, col]
            if not math.isfinite(value):
                fill = _NAN
            else:
                t = (value - lo) / span if span else 0.5
                fill = _ramp(min(max(t, 0.0), 1.0))
            body.append(_rect(x0 + tick * cell_w, y_cursor,
                              cell_w, cell_height, fill))
        y_cursor += cell_height + 2
    y_cursor += 4
    body.append(_text(x0, y_cursor + 10,
                      f"{row_label} 0..{max(n_ticks - 1, 0)}  |  "
                      f"lo {_label(lo)}", size=9))
    body.append(_text(width - _MARGIN_RIGHT, y_cursor + 10,
                      f"hi {_label(hi)}", size=9, anchor="end"))
    height = int(y_cursor + 22)
    return _document(width, height, body)


def bar_figure(title: str,
               rows: Sequence[tuple[str, float]], *,
               width: int = 520, row_height: int = 24) -> str:
    """Horizontal signed bars, one labelled row per value.

    The ablation gallery uses this for leave-one-out importance:
    each bar grows from the shared zero axis — positive (protective)
    values in the first palette hue, negative (harmful) in the
    second, NaN as a neutral grey stub on the axis — with the exact
    value printed at the right edge.
    """
    label_w = 190
    value_w = 84
    x0 = float(label_w)
    plot_w = width - label_w - value_w
    values = np.asarray([value for _, value in rows],
                        dtype=np.float64)
    finite = values[np.isfinite(values)]
    lo = min(0.0, float(finite.min())) if finite.size else 0.0
    hi = max(0.0, float(finite.max())) if finite.size else 1.0
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo
    zero_x = x0 + plot_w * (0.0 - lo) / span
    body: list[str] = [_text(10, 17, title, size=13)]
    y_cursor = float(_TITLE_H)
    for label, value in rows:
        mid = y_cursor + row_height / 2
        body.append(_text(x0 - 6, mid + 4, label, size=10,
                          anchor="end"))
        body.append(_rect(x0, y_cursor + 3, plot_w, row_height - 6,
                          _BG, stroke=_FRAME))
        value = float(value)
        if math.isfinite(value):
            vx = x0 + plot_w * (value - lo) / span
            bar_x, bar_w = ((zero_x, vx - zero_x) if vx >= zero_x
                            else (vx, zero_x - vx))
            fill = PALETTE[0] if value >= 0 else PALETTE[1]
            body.append(_rect(bar_x, y_cursor + 5, max(bar_w, 1.0),
                              row_height - 10, fill))
        else:
            body.append(_rect(zero_x - 2.0, y_cursor + 5, 4.0,
                              row_height - 10, _NAN))
        body.append(_text(width - 6, mid + 4, _label(value),
                          size=10, anchor="end"))
        y_cursor += row_height
    # Zero axis drawn last so it overlays every row's frame.
    body.append(_rect(zero_x - 0.5, float(_TITLE_H), 1.0,
                      y_cursor - _TITLE_H, _FG))
    body.append(_text(x0, y_cursor + 12, f"lo {_label(lo)}", size=9))
    body.append(_text(width - _MARGIN_RIGHT, y_cursor + 12,
                      f"hi {_label(hi)}", size=9, anchor="end"))
    return _document(width, int(y_cursor + 22), body)


def sparkline_figure(title: str,
                     rows: Sequence[tuple[str, np.ndarray]], *,
                     width: int = 520, row_height: int = 34) -> str:
    """Small-multiple sparklines, one labelled row per series.

    The trajectory gallery uses this for ops/s-over-PRs: each row is
    a ``section/backend`` line with its latest value printed at the
    right edge.
    """
    label_w = 190
    value_w = 84
    x0 = float(label_w)
    plot_w = width - label_w - value_w
    body: list[str] = [_text(10, 17, title, size=13)]
    y_cursor = float(_TITLE_H)
    for idx, (label, values) in enumerate(rows):
        values = np.asarray(values, dtype=np.float64)
        color = PALETTE[idx % len(PALETTE)]
        mid = y_cursor + row_height / 2
        body.append(_text(x0 - 6, mid + 4, label, size=10,
                          anchor="end"))
        lo, hi = _finite_range([values])
        body.append(_rect(x0, y_cursor + 4, plot_w, row_height - 8,
                          _BG, stroke=_FRAME))
        for segment in _series_segments(values, x0, plot_w,
                                        y_cursor + 6, row_height - 12,
                                        lo, hi):
            body.append(_polyline(segment, color))
        finite = values[np.isfinite(values)]
        latest = _label(float(finite[-1])) if finite.size else "-"
        body.append(_text(width - 6, mid + 4, latest, size=10,
                          anchor="end", fill=color))
        y_cursor += row_height
    return _document(width, int(y_cursor + 8), body)
