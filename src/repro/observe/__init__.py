"""Observability: metrics/trace instrumentation, figure galleries,
and the bench-trajectory store.

Three pillars (ISSUE 8):

* :mod:`repro.observe.metrics` — a deterministic
  :class:`MetricsRegistry` (counters, gauges, timing histograms) and
  a structured trace-event log, threaded through the simulators,
  router, transport, and sweep engine behind an opt-in hook
  (:func:`install` / :func:`active`).  Disabled, every hook is a
  single ``is None`` check; enabled, results stay bit-identical
  because only wall-clock timings are new state and they never touch
  canonical payloads.
* :mod:`repro.observe.figures` / :mod:`repro.observe.gallery` — a
  dependency-free byte-deterministic SVG renderer and the ``report``
  CLI target that turns result.json + artifact manifests into
  committed figure galleries.
* :mod:`repro.observe.trajectory` — the append-only
  ``benchmarks/trajectory/`` store of per-PR bench snapshots behind
  the ``--trajectory`` gate.
"""

from .metrics import (
    MetricsRegistry,
    TimingStat,
    active,
    install,
    installed,
    uninstall,
)

__all__ = [
    "MetricsRegistry",
    "TimingStat",
    "active",
    "install",
    "installed",
    "uninstall",
]
