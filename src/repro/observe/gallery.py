"""Figure galleries from a result.json + artifact manifest.

The ``report`` CLI target points here: given a sweep output directory
(``--out``), every ``<target>/result.json`` found in it is turned
into a committed gallery under ``<target>/figures/`` — one or more
SVGs per cell artifact plus a ``GALLERY.md`` index.  Rendering is a
pure function of the payload and the ``.npz`` contents:

* manifest entries are sorted by artifact file name before anything
  is drawn, so the gallery is invariant to manifest ordering;
* artifact file names are content-addressed
  (``<experiment>-<digest>``), so figure names are stable across
  runs, jobs, and executors;
* the SVG builders in :mod:`repro.observe.figures` are
  byte-deterministic.

Together that gives the CI property the tentpole asks for: galleries
rendered from a ``--jobs 1`` run and a ``--jobs 2`` run of the same
grid are byte-identical directories.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from .. import io
from ..contracts import validate_result
from . import figures, trajectory

__all__ = [
    "render_out_tree",
    "render_result_gallery",
    "trajectory_figure",
]


def _timeline_figures(arrays: Mapping[str, np.ndarray]) -> dict:
    """Closed-loop attack timeline: control channels vs damage."""
    panels = [
        ("amplification", [
            ("amplification", arrays["tick_amplification"])]),
        ("attack: poison keys injected per tick", [
            ("injected", arrays["tick_injected"])]),
        ("defense response", [
            ("keep_fraction", arrays["tick_keep_fraction"]),
            ("rebuild_threshold", arrays["tick_rebuild_threshold"])]),
    ]
    return {"timeline": ("closed-loop attack timeline", panels)}


def _workload_figures(arrays: Mapping[str, np.ndarray]) -> dict:
    panels = [
        ("probe percentiles", [
            ("p50", arrays["tick_p50"]),
            ("p95", arrays["tick_p95"]),
            ("p99", arrays["tick_p99"])]),
        ("amplification", [
            ("amplification", arrays["tick_amplification"])]),
        ("index size", [("n_keys", arrays["tick_n_keys"])]),
    ]
    return {"serving": ("serving replay", panels)}


def _cluster_line_figures(arrays: Mapping[str, np.ndarray]) -> dict:
    out = {
        "timeline": ("cluster timeline", [
            ("victim-facing percentiles", [
                ("p50", arrays["tick_p50"]),
                ("p95", arrays["tick_p95"]),
                ("p99", arrays["tick_p99"])]),
            ("attack + management", [
                ("injected", arrays["tick_injected"]),
                ("migrated", arrays["tick_migrated"]),
                ("retrains", arrays["tick_retrains"])]),
            ("load imbalance", [
                ("imbalance", arrays["tick_imbalance"])]),
        ]),
        "transport": ("transport degradation", [
            ("degraded calls / flagged replicas", [
                ("degraded", arrays["tick_degraded"]),
                ("flagged", arrays["tick_flagged"])]),
            ("injected latency (ms)", [
                ("latency_ms", arrays["tick_latency_ms"])]),
        ]),
    }
    return out


def _render_cell(target: str, stem: str,
                 arrays: Mapping[str, np.ndarray],
                 figures_dir: Path) -> "list[tuple[str, str]]":
    """Render one cell's figures; return (file name, caption) pairs."""
    written: list[tuple[str, str]] = []

    def emit(kind: str, caption: str, svg: str) -> None:
        name = f"{stem}.{kind}.svg"
        (figures_dir / name).write_text(svg)
        written.append((name, caption))

    if target == "closedloop":
        for kind, (title, panels) in _timeline_figures(arrays).items():
            emit(kind, title,
                 figures.line_figure(f"{stem} — {title}", panels))
    elif target == "workload":
        for kind, (title, panels) in _workload_figures(arrays).items():
            emit(kind, title,
                 figures.line_figure(f"{stem} — {title}", panels))
    elif target == "cluster":
        for kind, (title, panels) in sorted(
                _cluster_line_figures(arrays).items()):
            emit(kind, title,
                 figures.line_figure(f"{stem} — {title}", panels))
        emit("shards", "per-shard load heatmap",
             figures.heatmap_figure(f"{stem} — per-shard load",
                                    arrays["shard_loads"],
                                    col_label="shard"))
        emit("tenants", "per-tenant p95 heatmap",
             figures.heatmap_figure(f"{stem} — per-tenant p95",
                                    arrays["tenant_p95"],
                                    col_label="tenant"))
        if "shard_split_points" in arrays:
            splits = np.asarray(arrays["shard_split_points"])
            series = [(f"split {i}", splits[:, i])
                      for i in range(splits.shape[1])]
            emit("drift", "shard-map split-point drift",
                 figures.line_figure(
                     f"{stem} — split-point drift",
                     [("split-point key positions", series)]))
    return written


def _render_ablation(ablation: Mapping,
                     figures_dir: Path) -> "list[tuple[str, str]]":
    """One importance-bar figure per ablated scenario.

    Reads only the declared ``ablation`` section keys (validated
    upstream by :func:`repro.contracts.validate_ablation_section`);
    scores travel as JSON-safe floats, so they come back through
    :func:`repro.io.parse_json_float`.
    """
    written: list[tuple[str, str]] = []
    for scenario_entry in ablation["scenarios"]:
        scenario = scenario_entry["scenario"]
        rows = []
        for component_entry in scenario_entry["components"]:
            rows.append((
                f'{component_entry["rank"]}. '
                f'{component_entry["component"]}',
                io.parse_json_float(component_entry["score"])))
        name = f"ablation-{scenario}.importance.svg"
        svg = figures.bar_figure(
            f"{scenario} — leave-one-out importance "
            f"(victim amplification delta)", rows)
        (figures_dir / name).write_text(svg)
        written.append((name,
                        f"{scenario} component importance ranking"))
    return written


def render_result_gallery(target_dir: "str | Path",
                          ) -> "list[Path]":
    """Render ``<target_dir>/figures/`` from its result.json.

    The document is validated against the declared
    ``repro.experiments.result/v2`` contract before anything is read
    from it — unknown or missing keys raise
    :class:`~repro.contracts.ContractViolation` instead of surfacing
    as a KeyError three readers later.  Unknown *targets* render an
    empty list (no figures dir) — the ``report`` CLI walks every
    result.json under ``--out`` and only the targets with a figure
    recipe produce galleries.
    """
    target_dir = Path(target_dir)
    payload = validate_result(
        json.loads((target_dir / "result.json").read_text()))
    target = payload["target"]
    if target not in ("closedloop", "cluster", "workload", "ablate"):
        return []
    manifest = sorted(payload["artifacts"],
                      key=lambda entry: entry["file"])
    figures_dir = target_dir / "figures"
    figures_dir.mkdir(parents=True, exist_ok=True)
    index: list[tuple[str, str]] = []
    if target == "ablate":
        # The importance bars come from the validated ``ablation``
        # result section, not from the per-cell .npz series — the
        # figure is the ranking itself.
        index.extend(_render_ablation(payload["result"]["ablation"],
                                      figures_dir))
    else:
        for entry in manifest:
            artifact = target_dir / entry["file"]
            arrays = io.load_arrays(artifact)
            stem = Path(entry["file"]).stem
            index.extend(_render_cell(target, stem, arrays,
                                      figures_dir))
    lines = [f"# {target} gallery", "",
             f"{len(index)} figures from {len(manifest)} cell "
             f"artifacts.  Regenerate with "
             f"`PYTHONPATH=src python -m repro.experiments report "
             f"--out <dir>`.", ""]
    for name, caption in index:
        lines.append(f"- [{name}]({name}) — {caption}")
    (figures_dir / "GALLERY.md").write_text("\n".join(lines) + "\n")
    return [figures_dir / "GALLERY.md"] + [
        figures_dir / name for name, _ in index]


def trajectory_figure(store_dir: "str | Path" = trajectory.DEFAULT_STORE,
                      ) -> "str | None":
    """Ops/s-over-PRs sparkline SVG, or None on an empty store."""
    series = trajectory.ops_series(store_dir)
    if not series:
        return None
    n = len(trajectory.list_snapshots(store_dir))
    rows = [(lane, np.asarray(values, dtype=np.float64))
            for lane, values in sorted(series.items())]
    return figures.sparkline_figure(
        f"bench trajectory — ops/s over {n} snapshots", rows)


def render_out_tree(out_dir: "str | Path",
                    store_dir: "str | Path | None" = None,
                    ) -> "list[Path]":
    """Render galleries for every target under a sweep output dir.

    When a trajectory store exists (``store_dir`` or the default
    ``benchmarks/trajectory/``), its sparkline lands at
    ``<out_dir>/trajectory.svg`` alongside the per-target galleries.
    """
    out = Path(out_dir)
    written: list[Path] = []
    for result_path in sorted(out.glob("*/result.json")):
        written.extend(render_result_gallery(result_path.parent))
    store = Path(store_dir) if store_dir is not None \
        else trajectory.DEFAULT_STORE
    svg = trajectory_figure(store) if store.is_dir() else None
    if svg is not None:
        path = out / "trajectory.svg"
        path.write_text(svg)
        written.append(path)
    return written
