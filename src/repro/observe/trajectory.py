"""Append-only store of per-PR bench snapshots.

``benchmarks/trajectory/`` holds numbered copies of the committed
``BENCH_workload.json`` — one per PR that chose to record itself —
named ``NNNN-label.json`` so plain lexicographic order is the PR
order.  The store is append-only by construction: :func:`append`
always allocates the next index and refuses to overwrite, so history
can only grow and the ops/s trajectory across PRs stays diffable in
git instead of being recoverable only from archaeology.

Two consumers:

* the gallery renders an ops/s-over-PRs sparkline per
  ``section/backend`` lane (:func:`ops_series`), and
* the bench ``--trajectory check`` gate compares fresh numbers
  against the **best** prior snapshot per lane (:func:`best_ops`) —
  a real trajectory gate, not a single-snapshot diff, so a slow
  runner recording a weak snapshot can never lower the bar.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Mapping

from .. import io

__all__ = [
    "append",
    "best_ops",
    "lane_key",
    "list_snapshots",
    "ops_series",
]

#: Default store location, relative to the repository root.
DEFAULT_STORE = Path("benchmarks") / "trajectory"

_SNAPSHOT_RE = re.compile(r"^(\d{4})-[\w.-]+\.json$")


def list_snapshots(store_dir: "str | Path" = DEFAULT_STORE) -> "list[Path]":
    """Snapshot files in append (= lexicographic) order."""
    store = Path(store_dir)
    if not store.is_dir():
        return []
    return sorted(p for p in store.iterdir()
                  if _SNAPSHOT_RE.match(p.name))


def append(snapshot_path: "str | Path",
           store_dir: "str | Path" = DEFAULT_STORE,
           label: str = "snapshot") -> Path:
    """Copy a bench snapshot into the store under the next index.

    Never overwrites: the new file gets index ``len(existing) + 1``
    checked against the directory, and a collision is an error — the
    store only grows.
    """
    payload = io.load_json(snapshot_path)
    if "schema" not in payload:
        raise ValueError(
            f"{snapshot_path} does not look like a bench snapshot "
            f"(no 'schema' key)")
    label = re.sub(r"[^\w.-]+", "-", label).strip("-") or "snapshot"
    store = Path(store_dir)
    store.mkdir(parents=True, exist_ok=True)
    existing = list_snapshots(store)
    index = 1
    if existing:
        index = int(_SNAPSHOT_RE.match(existing[-1].name).group(1)) + 1
    target = store / f"{index:04d}-{label}.json"
    if target.exists():
        raise FileExistsError(
            f"trajectory store already has {target}; the store is "
            f"append-only")
    io.save_json(payload, target)
    return target


def lane_key(section: str, backend: str) -> str:
    """One sparkline lane / gate lane per ``section/backend``."""
    return f"{section}/{backend}"


def _lanes(payload: Mapping, sections: "tuple[str, ...]") -> dict:
    """``lane -> ops_per_second`` for one snapshot payload."""
    lanes: dict[str, float] = {}
    for section in sections:
        record = payload.get(section)
        if not isinstance(record, Mapping):
            continue
        for backend, stats in record.items():
            if isinstance(stats, Mapping) \
                    and "ops_per_second" in stats:
                ops = io.parse_json_float(stats["ops_per_second"])
                lanes[lane_key(section, backend)] = float(ops)
    return lanes


def ops_series(store_dir: "str | Path" = DEFAULT_STORE,
               sections: "tuple[str, ...]" = ("serving_replay",
                                              "cluster"),
               ) -> "dict[str, list[float]]":
    """Per-lane ops/s across snapshots, NaN where a lane is absent.

    Every lane's list has one entry per snapshot, in store order —
    exactly the shape the sparkline renderer wants (NaN breaks the
    line for PRs that predate a section).
    """
    snapshots = [_lanes(io.load_json(path), sections)
                 for path in list_snapshots(store_dir)]
    lanes = sorted({lane for snap in snapshots for lane in snap})
    return {lane: [snap.get(lane, float("nan")) for snap in snapshots]
            for lane in lanes}


def best_ops(store_dir: "str | Path" = DEFAULT_STORE,
             sections: "tuple[str, ...]" = ("serving_replay",
                                            "cluster"),
             ) -> "dict[str, float]":
    """Best recorded ops/s per lane across the whole store."""
    best: dict[str, float] = {}
    for path in list_snapshots(store_dir):
        for lane, ops in _lanes(io.load_json(path), sections).items():
            if ops == ops and ops > best.get(lane, float("-inf")):
                best[lane] = ops
    return best
