"""Scenario: drip-fed poisoning of a live index, with and without TRIM.

A deployed dynamic learned index serves a steady query stream while an
adversary drips crafted keys through the public insert API — one every
few dozen organic operations, never a burst a rate limiter would flag.
Each retrain cycle then trains on the poisoned merge and lookups get
slower for everyone.

The defense attempt: a TRIM sanitizer at the retrain boundary.  Keys
TRIM rejects are *quarantined* — still served, via a slow
binary-searched side list, so correctness is untouched — but they
never reach the learned models.  The demo replays the identical trace
three times (binary-search baseline, undefended dynamic index,
TRIM-defended dynamic index) and measures how well that works.
Spoiler, faithful to Section VI of the paper: not well — crafted CDF
poison hides among the organic churn, so TRIM quarantines as many
legitimate keys as crafted ones and the models stay damaged.

Run:  python examples/streaming_attack_demo.py
"""

import numpy as np

from repro.experiments import render_table, section
from repro.workload import (
    ServingSimulator,
    TraceSpec,
    generate_trace,
    make_backend,
)


def replay(trace, name, **kwargs):
    backend = make_backend(name, trace.base_keys,
                           rebuild_threshold=0.05, **kwargs)
    return ServingSimulator(backend, trace, tick_ops=500).run(), backend


def main() -> None:
    spec = TraceSpec(
        n_base_keys=4_000,
        n_ops=12_000,
        query_mix="zipfian",
        insert_fraction=0.04,      # organic churn for cover
        delete_fraction=0.02,
        poison_schedule="drip",
        poison_percentage=12.0,
        seed=131)
    trace = generate_trace(spec)
    poison = trace.poison_keys()
    print(section(
        f"live serving: {spec.n_base_keys} keys, {spec.n_ops} ops, "
        f"{poison.size} poison keys dripped in "
        f"(~1 per {spec.n_ops // poison.size} ops)"))

    runs = [
        ("binary search (no model)", "binary", {}),
        ("dynamic index, undefended", "dynamic", {}),
        ("dynamic index + TRIM", "dynamic",
         {"trim_keep_fraction": 0.9}),
    ]
    rows = []
    quarantine_recall = None
    for label, name, kwargs in runs:
        report, backend = replay(trace, name, **kwargs)
        quarantined = getattr(backend, "quarantine_size", 0)
        if quarantined:
            caught = np.isin(poison,
                             backend._index.quarantine_keys).sum()
            quarantine_recall = caught / poison.size
        rows.append([
            label,
            f"{report.p50:.1f} / {report.p99:.1f}",
            f"{report.series['error_bound'][-1]:.0f}",
            f"{report.final_amplification:.2f}x",
            report.retrains,
            quarantined,
            f"{report.found_fraction:.1%}",
        ])
    print(render_table(
        ["configuration", "p50/p99 probes", "model err", "slowdown",
         "retrains", "quarantined", "found"], rows))

    print(f"\nThe undefended index retrains on every poisoned merge: "
          f"its worst-case model error window keeps widening and "
          f"every lookup drifts slower.  Bolting TRIM onto the "
          f"retrain loop barely helps — only "
          f"{quarantine_recall:.0%} of the crafted keys end up "
          f"quarantined; the rest hide among the organic churn (the "
          f"quarantine is half legitimate keys), the models stay "
          f"damaged, and misses now also pay a quarantine search in "
          f"the p99 tail.  That is Section VI's claim, measured "
          f"online: residual-based defenses struggle against CDF "
          f"poisoning because ranks are relational and crafted keys "
          f"sit in dense regions.  Correctness never moves (same "
          f"found rate in every configuration).\n"
          f"The time series behind these numbers (per-tick p99, "
          f"error bound, amplification) is what `python -m "
          f"repro.experiments workload --out DIR` persists as .npz "
          f"artifacts.")


if __name__ == "__main__":
    main()
