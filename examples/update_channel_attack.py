"""Scenario: poisoning a live index through its public insert API.

A deployed learned index that accepts updates buffers them and
periodically retrains on base + buffer (the delta-buffer designs the
paper cites).  This script shows that the poisoning window never
closes: an adversary restricted to calling ``insert`` stages exactly
the static pre-training attack — the crafted keys simply wait in the
buffer until the next retrain cycle consumes them.

Run:  python examples/update_channel_attack.py
"""

import numpy as np

from repro.core import (
    RMIAttackerCapability,
    poison_rmi,
    poison_via_updates,
)
from repro.data import Domain, uniform_keyset
from repro.experiments import format_ratio, render_table, section
from repro.index import DynamicLearnedIndex
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("update-channel-attack", 9))
    keys = uniform_keyset(5_000, Domain.of_size(100_000), rng)
    n_models = 50
    print(section(f"live index: {keys.n} keys, {n_models} second-stage "
                  "models, retrain at 5% buffered updates"))

    # Reference: the static attack, had the adversary been present at
    # the initial build.
    capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                       alpha=3.0)
    static = poison_rmi(keys, n_models, capability,
                        max_exchanges=n_models)

    # The deployed index, attacked purely through inserts.
    live = DynamicLearnedIndex(keys, n_models=n_models,
                               retrain_threshold=0.05)
    queries = keys.keys[::9]
    clean_cost = live.lookup_cost(queries)
    update = poison_via_updates(live, poisoning_percentage=10.0)

    rows = [
        ["static pre-training attack",
         format_ratio(static.rmi_ratio_loss), "-"],
        ["insert-API attack", format_ratio(update.ratio_loss),
         f"{update.retrains_triggered} retrains"],
        ["lookup cost clean -> poisoned",
         f"{clean_cost:.2f} -> {live.lookup_cost(queries):.2f}",
         "probes/lookup"],
    ]
    print(render_table(["attack path", "ratio loss", "notes"], rows))
    print("\nEvery key the adversary inserted was a legal in-range "
          "value; the retraining step did the rest.  Supporting "
          "updates re-opens the pre-training attack surface forever.")


if __name__ == "__main__":
    main()
