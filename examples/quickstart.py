"""Quickstart: poison a CDF regression in twenty lines.

Generates a uniform keyset (the case learned indexes love), mounts the
greedy multi-point attack of Algorithm 1, and shows the two numbers
that matter: the inflated training MSE (the paper's Ratio Loss) and
the extra probes every legitimate lookup now pays.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import fit_cdf_regression, greedy_poison
from repro.data import Domain, uniform_keyset
from repro.index import LinearLearnedIndex
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("quickstart", 0))
    keys = uniform_keyset(1_000, Domain.of_size(10_000), rng)
    print(f"legitimate keyset: {keys}")

    clean_fit = fit_cdf_regression(keys)
    print(f"clean regression : rank = {clean_fit.model.slope:.4f} * key "
          f"+ {clean_fit.model.intercept:.2f}  (MSE {clean_fit.mse:.2f})")

    # The attacker contributes 10% poisoned keys before training.
    attack = greedy_poison(keys, n_poison=100)
    print(f"attack           : injected {attack.n_injected} keys, "
          f"MSE {attack.loss_before:.2f} -> {attack.loss_after:.2f} "
          f"({attack.ratio_loss:.1f}x)")

    # End-to-end: lookups on *legitimate* keys get slower.
    poisoned = keys.insert(attack.poison_keys)
    clean_index = LinearLearnedIndex(keys)
    dirty_index = LinearLearnedIndex(poisoned)
    queries = keys.keys[::10]
    print(f"lookup cost      : {clean_index.lookup_cost(queries):.2f} "
          f"probes/lookup clean, "
          f"{dirty_index.lookup_cost(queries):.2f} poisoned")


if __name__ == "__main__":
    main()
