"""Scenario: geolocation index under attack — does the B-Tree win back?

The learned-index pitch is beating B-Trees on lookups over data like
OpenStreetMap coordinates (the paper's Fig. 7, dataset B).  This
script builds both structures over (simulated) school latitudes,
mounts the RMI attack at increasing poisoning percentages, and tracks
the probes-per-lookup gap — the practical "price of tailoring the
index to your data".

Run:  python examples/geolocation_vs_btree.py
"""

import numpy as np

from repro.core import RMIAttackerCapability, poison_rmi
from repro.data import osm_school_latitudes
from repro.experiments import render_table, section
from repro.index import BTree, RecursiveModelIndex
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("geolocation-vs-btree", 21))
    latitudes = osm_school_latitudes(rng, n=20_000)
    print(section(f"OSM school latitudes (simulated): {latitudes.n} "
                  f"keys, density {latitudes.density:.1%}"))

    model_size = 100
    n_models = latitudes.n // model_size
    tree = BTree.bulk_load(latitudes.keys)
    queries = latitudes.keys[::13]
    btree_cost = float(np.mean(
        [tree.search(int(k)).comparisons for k in queries]))

    rows = []
    for pct in (0.0, 5.0, 10.0, 20.0):
        if pct == 0.0:
            working = latitudes
        else:
            capability = RMIAttackerCapability(
                poisoning_percentage=pct, alpha=3.0)
            attack = poison_rmi(latitudes, n_models, capability,
                                max_exchanges=n_models)
            working = latitudes.insert(attack.poison_keys)
        rmi = RecursiveModelIndex.build_equal_size(working, n_models)
        cost = rmi.lookup_cost(queries)
        rows.append([f"{pct:g}%", f"{cost:.2f}",
                     f"{btree_cost:.2f}",
                     f"{btree_cost / cost:.2f}x"])
    print(render_table(
        ["poisoning", "RMI probes", "B-Tree comparisons",
         "RMI advantage"], rows))
    print("\nThe RMI's edge over the B-Tree shrinks as the poisoning "
          "percentage grows; at paper scale (10^7 keys, 300x ratio "
          "losses) the ordering flips.")


if __name__ == "__main__":
    main()
