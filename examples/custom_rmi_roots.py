"""Scenario: swapping first-stage models in the RMI.

The paper's architecture uses a neural-network root; the attack only
touches the linear second stage, so any root works.  This script
builds the same index over log-normal keys with three roots — a
single line, a piecewise-linear spline, and the from-scratch numpy
MLP — and compares routing quality and lookup cost before and after
poisoning.

Run:  python examples/custom_rmi_roots.py
"""

import numpy as np

from repro.core import RMIAttackerCapability, poison_rmi
from repro.data import Domain, lognormal_keyset
from repro.experiments import render_table, section
from repro.index import (
    LinearRoot,
    MLPRoot,
    PiecewiseLinearRoot,
    RecursiveModelIndex,
)
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("custom-rmi-roots", 5))
    keys = lognormal_keyset(5_000, Domain.of_size(500_000), rng)
    print(section(f"log-normal keyset: {keys.n} keys over a "
                  f"{keys.m:,}-value universe"))

    n_models = 50
    capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                       alpha=3.0)
    attack = poison_rmi(keys, n_models, capability,
                        max_exchanges=n_models)
    poisoned = keys.insert(attack.poison_keys)
    queries = keys.keys[::9]

    roots = [
        ("linear", lambda: LinearRoot()),
        ("piecewise-64", lambda: PiecewiseLinearRoot(64)),
        ("mlp-32", lambda: MLPRoot(hidden=32, epochs=60, seed=1)),
    ]
    rows = []
    for name, factory in roots:
        clean = RecursiveModelIndex.build_with_root(keys, n_models,
                                                    factory())
        dirty = RecursiveModelIndex.build_with_root(poisoned, n_models,
                                                    factory())
        rows.append([
            name,
            f"{clean.lookup_cost(queries):.2f}",
            f"{dirty.lookup_cost(queries):.2f}",
            f"{clean.max_search_window()}",
            f"{dirty.max_search_window()}",
        ])
    print(render_table(
        ["root", "clean probes", "poisoned probes",
         "clean window", "poisoned window"], rows))
    print("\nThe root only changes routing; the poisoning damage lives "
          "in the second-stage windows regardless of the root choice — "
          "which is why the paper attacks stage two.")


if __name__ == "__main__":
    main()
