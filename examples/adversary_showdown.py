"""Scenario: the three Sec. VI adversaries — insert, delete, modify.

The paper formalises the insertion adversary and names removal and
modification as future work; this library implements all three.  The
script races them at equal budgets on the same keyset and prints what
each costs the defender in model error and in auditability (does the
key count change? do new values appear?).

Run:  python examples/adversary_showdown.py
"""

import numpy as np

from repro.core import greedy_delete, greedy_modify, greedy_poison
from repro.data import Domain, uniform_keyset
from repro.experiments import format_ratio, render_table, section
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("adversary-showdown", 17))
    keys = uniform_keyset(2_000, Domain.of_size(20_000), rng)
    budget = 200  # 10%
    print(section(f"keyset: {keys.n} uniform keys; budget: {budget} "
                  "operations (10%)"))

    insert = greedy_poison(keys, budget)
    delete = greedy_delete(keys, budget)
    modify = greedy_modify(keys, budget)

    rows = [
        ["insert", format_ratio(insert.ratio_loss),
         f"+{insert.n_injected} keys", "new values appear"],
        ["delete", format_ratio(delete.ratio_loss),
         f"-{delete.n_removed} keys", "known values vanish"],
        ["modify", format_ratio(modify.ratio_loss),
         "key count unchanged", "only positions shift"],
    ]
    print(render_table(
        ["adversary", "ratio loss", "cardinality footprint",
         "audit signal"], rows))

    print("\nModification pairs a deletion with an insertion per "
          "budget unit — the strongest and least auditable of the "
          "three.  Any defense that only counts contributions misses "
          "it entirely.")


if __name__ == "__main__":
    main()
