"""Scenario: poisoning a salary index (the paper's Fig. 7, dataset A).

A county publishes an employee-salary dataset that anyone can
contribute records to; a learned index (two-stage RMI) serves salary
lookups.  An adversary who can submit a bounded number of fabricated
salary records before the index is (re)built mounts Algorithm 2.

The script reports the paper's metrics — per-second-stage-model ratio
losses and the overall RMI ratio — plus the end-to-end probe counts
on the poisoned index.

Run:  python examples/salary_poisoning.py
"""

import numpy as np

from repro.core import RMIAttackerCapability, poison_rmi, summarize
from repro.data import miami_salaries
from repro.experiments import format_ratio, render_table, section
from repro.index import RecursiveModelIndex
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("salary-poisoning", 7))
    salaries = miami_salaries(rng)
    print(section("Miami-Dade salaries (simulated): "
                  f"{salaries.n} unique keys, density "
                  f"{salaries.density:.2%}"))

    model_size = 100
    n_models = salaries.n // model_size
    capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                       alpha=3.0)
    print(f"RMI: {n_models} second-stage models of ~{model_size} keys; "
          f"attacker budget {capability.budget(salaries.n)} keys "
          f"(10%), per-model threshold "
          f"{capability.per_model_threshold(salaries.n, n_models)}")

    attack = poison_rmi(salaries, n_models, capability,
                        max_exchanges=2 * n_models)
    ratios = attack.per_model_ratios
    finite = ratios[np.isfinite(ratios)]
    stats = summarize(finite)
    rows = [
        ["RMI ratio loss", format_ratio(attack.rmi_ratio_loss)],
        ["median model ratio", format_ratio(stats.median)],
        ["worst model ratio", format_ratio(stats.maximum)],
        ["volume exchanges", str(attack.exchanges)],
        ["keys injected", str(attack.total_injected)],
    ]
    print(render_table(["metric", "value"], rows))

    # The injected salaries are indistinguishable-in-range values.
    print(f"injected salary range: ${attack.poison_keys.min():,} .. "
          f"${attack.poison_keys.max():,} (legitimate range "
          f"${salaries.keys.min():,} .. ${salaries.keys.max():,})")

    # End-to-end effect on lookups of real employees' salaries.
    poisoned = salaries.insert(attack.poison_keys)
    clean_rmi = RecursiveModelIndex.build_equal_size(salaries, n_models)
    dirty_rmi = RecursiveModelIndex.build_equal_size(poisoned, n_models)
    queries = salaries.keys[::5]
    print(f"probes per lookup: {clean_rmi.lookup_cost(queries):.2f} "
          f"clean -> {dirty_rmi.lookup_cost(queries):.2f} poisoned; "
          f"worst-case search window "
          f"{clean_rmi.max_search_window()} -> "
          f"{dirty_rmi.max_search_window()} cells")


if __name__ == "__main__":
    main()
