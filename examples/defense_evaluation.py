"""Scenario: running the Section VI defense stack against the attack.

A defender who knows (or estimates) the clean key count tries three
mitigations against a 15% greedy poisoning attack:

1. range/outlier sanitisation — catches naive attacks, not this one;
2. density anomaly flagging — sees the poison clusters but flags
   legitimate neighbours with them;
3. TRIM (classic and rank-aware) — trims high-residual keys, at the
   cost of legitimate keys and residual loss.

Run:  python examples/defense_evaluation.py
"""

import numpy as np

from repro.core import fit_cdf_regression, greedy_poison
from repro.data import Domain, uniform_keyset
from repro.defense import (
    filter_quantile_outliers,
    flag_densest_keys,
    score_detection,
    trim_cdf,
    trim_regression,
)
from repro.experiments import format_ratio, render_table, section
from repro.runtime import stable_seed_words


def main() -> None:
    rng = np.random.default_rng(
        stable_seed_words("defense-evaluation", 3))
    keys = uniform_keyset(1_000, Domain.of_size(10_000), rng)
    attack = greedy_poison(keys, 150)
    poisoned = keys.insert(attack.poison_keys)
    print(section(f"attack: 15% poisoning, ratio loss "
                  f"{format_ratio(attack.ratio_loss)}"))

    rows = []

    # 1. Quantile sanitiser.
    report = filter_quantile_outliers(poisoned.keys, tail_fraction=0.02)
    caught = np.isin(attack.poison_keys, report.dropped).sum()
    rows.append(["quantile sanitizer (2% tails)",
                 f"{caught}/{attack.n_injected}",
                 f"{report.n_dropped - caught} legit dropped", "-"])

    # 2. Density detector, budgeted to flag exactly p keys.
    flagged = flag_densest_keys(poisoned.keys, attack.n_injected,
                                window=4)
    detection = score_detection(flagged, attack.poison_keys)
    rows.append(["density detector",
                 f"{detection.true_positives}/{attack.n_injected}",
                 f"precision {detection.precision:.0%}",
                 f"f1 {detection.f1:.2f}"])

    # 3a. Classic TRIM (stale ranks).
    classic = trim_regression(poisoned.keys.astype(np.float64),
                              poisoned.ranks.astype(np.float64),
                              n_keep=keys.n)
    rows.append(["TRIM (classic)",
                 f"{int(classic.recall_against(attack.poison_keys) * attack.n_injected)}"
                 f"/{attack.n_injected}",
                 f"precision {classic.precision_against(attack.poison_keys):.0%}",
                 f"residual {format_ratio(classic.final_loss / max(attack.loss_before, 1e-12))}"])

    # 3b. Rank-aware TRIM (re-ranks every round).
    aware = trim_cdf(poisoned.keys, n_keep=keys.n)
    rows.append(["TRIM (rank-aware)",
                 f"{int(aware.recall_against(attack.poison_keys) * attack.n_injected)}"
                 f"/{attack.n_injected}",
                 f"precision {aware.precision_against(attack.poison_keys):.0%}",
                 f"residual {format_ratio(aware.final_loss / max(attack.loss_before, 1e-12))}"])

    print(render_table(
        ["defense", "poison caught", "collateral / precision",
         "outcome"], rows))

    undefended = fit_cdf_regression(poisoned).mse
    print(f"\nundefended poisoned loss: "
          f"{format_ratio(undefended / attack.loss_before)} of clean; "
          "no defense restores the clean loss without collateral damage.")


if __name__ == "__main__":
    main()
